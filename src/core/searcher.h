// Embedding-based retrieval (paper §3.3): offline, every repository column
// is encoded and indexed; online, the query column is encoded and its k
// nearest neighbours under Euclidean distance are the discovery results.
// DeepJoin and all embedding baselines share this searcher (as in §5.1,
// "other methods involving column embedding follow the same ANNS scheme").
//
// Live mutability (DESIGN.md §12): the searcher is a concurrent reader /
// single-logical-writer structure. Readers (Search / SearchInto /
// SearchBatch) pin an immutable IndexSnapshot through a shared_ptr swap
// (RCU-style: the snapshot lock is held for a pointer copy only, never
// across a query). Mutators (AddColumn, RemoveColumn, Compact, publish,
// recovery) serialize on a writer lock and run alongside readers — the
// underlying HNSW index supports concurrent insert/delete/search natively.
// OpenLive() adds crash-safe durability: every mutation is WAL-logged
// before it touches memory, checkpoints publish as numbered generations
// behind an atomically-replaced MANIFEST, and recovery replays the WAL on
// top of the newest generation whose artifacts validate (falling back one
// generation on corruption).
#ifndef DEEPJOIN_CORE_SEARCHER_H_
#define DEEPJOIN_CORE_SEARCHER_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ann/hnsw.h"
#include "ann/ivfpq.h"
#include "core/encoders.h"
#include "util/alloc_guard.h"
#include "util/env.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace deepjoin {
namespace core {

enum class AnnBackend { kFlat, kHnsw, kIvfPq };

struct SearcherConfig {
  AnnBackend backend = AnnBackend::kHnsw;
  int hnsw_M = 16;
  int hnsw_ef_construction = 120;
  int hnsw_ef_search = 64;  ///< default beam; override per query instead
  /// Live-insert capacity ceiling for an incrementally-grown HNSW index
  /// (BuildIndex raises it to the repository size when larger). AddColumn
  /// past it returns FailedPrecondition.
  u32 hnsw_max_elements = 1u << 20;
  /// RemoveColumn triggers an automatic Compact() once the index carries
  /// at least `compact_min_dead` tombstones AND they make up at least
  /// `compact_dead_fraction` of the published nodes. Compaction is an
  /// optimisation — an auto-compact failure (e.g. injected publish I/O
  /// error in live mode) does not fail the remove.
  size_t compact_min_dead = 64;
  double compact_dead_fraction = 0.5;
  int ivfpq_nlist = 64;
  int ivfpq_m = 8;
  int ivfpq_nbits = 6;
  int ivfpq_nprobe = 8;  ///< default probe budget; override per query
  /// Row representation for the flat backend: StorageKind::kSq8 builds a
  /// scalar-quantized index directly (4x smaller resident rows; the first
  /// bulk add trains the per-dimension quantizer). The graph backends
  /// always build float — quantize at save time via SaveIndex options.
  ann::StorageKind flat_storage = ann::StorageKind::kFloat;
  /// Group-commit WAL (live mode): a mutation appends its record, applies
  /// in memory, releases the writer token, and then waits on a shared
  /// committer that issues ONE fsync for every record appended since the
  /// last one (leader/follower). The durability contract is unchanged — a
  /// mutation returns OK only after its record is on disk — but concurrent
  /// mutators share fsyncs instead of paying one each. Off (default):
  /// every record is fsync'd inline before the mutation is applied.
  bool wal_group_commit = false;
  /// How long a group-commit leader lingers for followers before issuing
  /// the shared fsync. 0 = sync immediately (still batches whatever is
  /// already appended). (Config duration, not a timing surface.)
  double wal_commit_window_ms = 0.5;  // dj_lint: allow(adhoc-timing)
  /// When set, the tombstone-triggered automatic Compact() is scheduled on
  /// this pool instead of running inline on the mutating thread — the
  /// client that happened to trip the threshold no longer pays the
  /// compaction pause. The pool must outlive the searcher, and callers
  /// must drain it (ThreadPool::Wait) before destroying the searcher.
  ThreadPool* compaction_pool = nullptr;
};

/// Per-call search options. Replaces the old positional `k` — and the old
/// pattern of mutating SearcherConfig/set_ef_search between calls, which
/// raced with concurrent searches. Overrides ride with the query.
struct SearchOptions {
  size_t k = 10;
  /// > 0: HNSW layer-0 beam width for this query only.
  int ef_search = 0;
  /// > 0: IVFPQ coarse cells scanned for this query only.
  int nprobe = 0;
  /// > 0: rerank k*refine_factor quantized candidates with exact float
  /// distances for this query only (applies to SQ8 indexes that carry a
  /// float refinement store; ignored otherwise).
  int refine_factor = 0;
  /// Collect a per-query trace::QueryStats breakdown. Off: SearchResult
  /// carries ids only and no trace machinery runs for this query.
  bool collect_stats = true;
};

/// Offline build cost breakdown (out-param of BuildIndex).
struct BuildStats {
  size_t columns = 0;        ///< columns encoded + indexed
  trace::QueryStats trace;   ///< searcher.build span tree
};

/// Append-only index-id -> column-id map, shared between the writer and
/// every snapshot taken after the compaction that created it. Readers call
/// At() lock-free: chunk pointers are reserved to capacity up front (so
/// published storage never moves) and an entry for index id X is always
/// appended before the index publishes X (the index's release-store of its
/// count is the fence readers acquire). Single writer by contract
/// (EmbeddingSearcher's writer lock).
class IdMap {
 public:
  explicit IdMap(u32 capacity) : capacity_(capacity) {
    chunks_.reserve((static_cast<size_t>(capacity) + kChunkMask) >>
                    kChunkShift);
  }
  IdMap(const IdMap&) = delete;
  IdMap& operator=(const IdMap&) = delete;

  /// Writer only. Aborts past capacity (the index runs out first: the
  /// searcher checks index capacity before appending).
  void Append(u32 column_id) {
    const u32 i = size_.load(std::memory_order_relaxed);
    DJ_CHECK_MSG(i < capacity_, "IdMap capacity exceeded");
    if ((i & kChunkMask) == 0) {
      // Reserved at construction: the pointer array never reallocates
      // under concurrent readers.
      chunks_.push_back(std::make_unique<u32[]>(kChunkSize));
    }
    chunks_[i >> kChunkShift][i & kChunkMask] = column_id;
    size_.store(i + 1, std::memory_order_release);
  }

  /// Lock-free; `index_id` must be below size() (readers only map ids the
  /// index has published, which are appended first).
  DJ_NOALLOC u32 At(u32 index_id) const {
    return chunks_[index_id >> kChunkShift][index_id & kChunkMask];
  }

  size_t size() const { return size_.load(std::memory_order_acquire); }

 private:
  static constexpr u32 kChunkShift = 10;
  static constexpr u32 kChunkSize = 1u << kChunkShift;
  static constexpr u32 kChunkMask = kChunkSize - 1;

  const u32 capacity_;
  std::vector<std::unique_ptr<u32[]>> chunks_;
  std::atomic<u32> size_{0};
};

/// One RCU-published view of the index. Immutable to readers: a query pins
/// the snapshot (shared_ptr copy under a brief lock) and works entirely
/// off it, so a concurrent Compact/BuildIndex swapping the current
/// snapshot never invalidates an in-flight search. The index object itself
/// is internally concurrent (inserts/removes by the writer are visible to
/// pinned readers — that is the point: a snapshot fixes *identity and id
/// space*, not contents).
struct IndexSnapshot {
  std::shared_ptr<ann::VectorIndex> index;
  /// Maps index ids to repository column ids; nullptr = identity (true
  /// until the first compaction renumbers the id space).
  std::shared_ptr<const IdMap> to_column;
  /// Durable generation this view descends from (0 = in-memory only).
  u64 generation = 0;
};

class EmbeddingSearcher {
 public:
  /// `encoder` must outlive the searcher.
  EmbeddingSearcher(ColumnEncoder* encoder, const SearcherConfig& config);

  /// Encodes and indexes the whole repository (offline phase). When a
  /// thread pool is given, the encoding stage — the dominant cost — runs
  /// in parallel across columns. Fails (InvalidArgument) for an IVFPQ
  /// backend with an empty repository: its quantizer needs training data.
  /// Replaces the current snapshot (column ids reset to identity); in live
  /// mode the rebuilt state is immediately published as a new durable
  /// generation (the old generation's WAL describes the replaced index,
  /// so it is retired). A publish failure is returned — the rebuilt index
  /// serves searches from memory, the previous generation stays the
  /// durable state, and the next mutation retries the publish. On
  /// `stats`, reports the build cost breakdown.
  [[nodiscard]] Status BuildIndex(const lake::Repository& repo,
                                  ThreadPool* pool = nullptr,
                                  BuildStats* stats = nullptr);

  /// Incrementally adds one column (new tables landing in the lake):
  /// encodes it and inserts the embedding into the live index, returning
  /// the column id Search will report for it (== repository position when
  /// adds mirror repository appends). Runs alongside concurrent searches.
  /// In live mode the insert is WAL-logged (fsync'd) before it is applied,
  /// so a crash never loses an acknowledged add. HNSW and flat support
  /// this natively; IVFPQ requires a trained quantizer, i.e. a prior
  /// BuildIndex — without one this returns FailedPrecondition.
  [[nodiscard]] Result<u32> AddColumn(const lake::Column& column);

  /// Tombstones the column with id `column_id` (as returned by AddColumn /
  /// reported by Search): it stops appearing in results immediately, for
  /// every ef_search, on Search and SearchBatch alike. NotFound when the
  /// id was never added or was already removed. In live mode the delete is
  /// WAL-logged first. May trigger an automatic Compact (see
  /// SearcherConfig).
  [[nodiscard]] Status RemoveColumn(u32 column_id);

  /// Rebuilds the index without tombstoned nodes, off to the side —
  /// searches keep running against the old snapshot until the compacted
  /// one swaps in (RCU). Index ids are renumbered; the snapshot's IdMap
  /// keeps reported column ids stable. In live mode the compacted state is
  /// published as a new durable generation *before* the in-memory swap, so
  /// a crash mid-compaction leaves the previous generation intact. HNSW
  /// backend only.
  [[nodiscard]] Status Compact();

  // ---- Live durability (DESIGN.md §12) ----

  /// Opens (or creates) a live index directory and switches the searcher
  /// into durable mode. An existing directory is recovered: the MANIFEST
  /// names the current generation; its checkpoint is loaded (falling back
  /// to the retained previous generation if corrupt) and its WAL replayed
  /// — recorded insert levels make the recovered graph bit-identical to
  /// the pre-crash one; a torn WAL tail is ignored. The recovered (or
  /// fresh) state is then rolled forward as a new generation. HNSW backend
  /// only. `env` nullptr → Env::Default(); the env must outlive the
  /// searcher.
  [[nodiscard]] Status OpenLive(const std::string& dir, Env* env = nullptr);

  /// Checkpoints the current state as a new durable generation and starts
  /// a fresh WAL (live mode only). On failure the previous generation —
  /// including the WAL records logged so far — remains the durable state.
  [[nodiscard]] Status PublishSnapshot();

  /// Current durable generation (0 until OpenLive publishes one).
  u64 generation() const;

  /// Persists / restores the built index through the unified DJIX format
  /// (ann::SaveIndexFile / ann::OpenIndex), any backend. `save` can
  /// convert the representation (SaveOptions::storage = kSq8 quantizes at
  /// save time); `open` picks the served representation and residency
  /// (OpenOptions::map = kMapped opens zero-copy in O(1) — read-only:
  /// subsequent mutations fail with FailedPrecondition, searches work).
  /// The loaded kind must match the configured backend.
  ///
  /// Single-file semantics are unchanged: only the index travels, so
  /// loading resets column ids to identity (use OpenLive for a mapping-
  /// preserving lifecycle). Loading into a live searcher republishes the
  /// loaded state as a new generation, like BuildIndex. Saves are atomic
  /// (tmp + fsync + rename; a crash or failure leaves the previous
  /// artifact intact); corrupt files load as DataLoss, never an abort —
  /// pre-DJIX standalone HNSW files still load. `env` nullptr →
  /// Env::Default().
  Status SaveIndex(const std::string& path, Env* env = nullptr,
                   const ann::SaveOptions& save = {}) const;
  Status LoadIndex(const std::string& path, Env* env = nullptr,
                   const ann::OpenOptions& open = {});

  struct SearchResult {
    std::vector<u32> ids;  ///< repository column ids, nearest first
    /// Per-query breakdown: span tree rooted at "searcher.search" (with
    /// "searcher.encode" / "searcher.ann" children) plus backend counters
    /// (hnsw.dist_evals, ivfpq.probes, ...). Empty when
    /// SearchOptions::collect_stats is false.
    trace::QueryStats stats;
  };

  /// Online top-k search for one query column. Safe to call concurrently
  /// with AddColumn / RemoveColumn / Compact from other threads.
  SearchResult Search(const lake::Column& query,
                      const SearchOptions& options = {});

  /// Allocation-free steady-state query path: encodes into thread-local
  /// capacity-reusing scratch, runs the pinned snapshot's index through
  /// VectorIndex::SearchInto, and refills out->ids in place. Search()
  /// forwards here. The DJ_NOALLOC contract (enforced by tools/dj_alloc
  /// and the guard-enabled searcher test) covers the steady state: scratch
  /// and pools warmed up, options.collect_stats == false (a TraceCollector
  /// allocates by design), and an HNSW backend (the flat/IVFPQ SearchInto
  /// default still builds a result vector).
  DJ_NOALLOC void SearchInto(const lake::Column& query,
                             const SearchOptions& options, SearchResult* out);

  /// Batched search across a thread pool — the accelerated path standing
  /// in for the paper's GPU rows (see DESIGN.md). Per-query stats report
  /// the encode stage amortised (batch encode time / batch size — the
  /// stage runs batched, so that's its true per-query cost) and the ANN
  /// stage exactly. The whole batch runs against one pinned snapshot.
  std::vector<SearchResult> SearchBatch(
      const std::vector<lake::Column>& queries, const SearchOptions& options,
      ThreadPool* pool);

  /// Reusable buffers for SearchBatchInto. All vectors grow to the working
  /// size on the first batches and are reused afterwards; a long-lived
  /// caller (the serving dispatcher) allocates nothing per batch.
  struct BatchScratch {
    std::vector<float> embeddings;               ///< nq x dim, row-major
    std::vector<std::vector<ann::Neighbor>> hits;  ///< per-query results
  };

  /// Zero-copy batched search for the serving layer (DESIGN.md §13):
  /// encodes the `n` query columns into `scratch`, runs ONE
  /// VectorIndex::SearchBatchInto over the pinned snapshot (flat backend:
  /// blocked-SGEMM scoring that streams the corpus once per batch), and
  /// refills each outs[i]->ids in place. `pool` parallelises the encode
  /// stage when given. Unlike SearchBatch, no per-query trace stats are
  /// collected (outs[i]->stats is left untouched) — the serving layer
  /// accounts latency through MetricsRegistry instead.
  void SearchBatchInto(const lake::Column* const* queries, size_t n,
                       const SearchOptions& options, ThreadPool* pool,
                       BatchScratch* scratch, SearchResult* const* outs);

  /// Pins the current snapshot (tests, tools, and callers that need a
  /// stable view across several operations). nullptr before the first
  /// BuildIndex/AddColumn/OpenLive.
  std::shared_ptr<const IndexSnapshot> PinSnapshot() const;

  /// Streaming shared-scan session for the serving layer (DESIGN.md §13;
  /// flat backend only). Construction pins the current snapshot; queries
  /// Board() between corpus tiles, ride one full wrap of
  /// FlatIndex::SharedScan, and Harvest() maps hits to repository column
  /// ids. Single-owner (one dispatcher thread drives it). Sessions are
  /// cheap to open; callers drain and start a fresh one when stale()
  /// reports the searcher has published a newer snapshot.
  class StreamScan {
   public:
    /// False when no index exists yet or the pinned backend has no shared
    /// scan (HNSW/IVFPQ) — callers fall back to SearchBatchInto.
    bool valid() const { return scan_ != nullptr; }
    /// True once the searcher published a snapshot other than the pinned
    /// one (compaction / rebuild): stop boarding, drain, reopen.
    bool stale() const;
    /// Encodes `query` and boards it wanting `k` results; returns the
    /// rider slot. Requires valid().
    size_t Board(const lake::Column& query, size_t k);
    /// Scores one tile; appends completed rider slots to `*done`.
    size_t Step(std::vector<size_t>* done) {
      return valid() ? scan_->Step(done) : 0;
    }
    /// Fills out->ids (nearest first, repository column ids) for a done
    /// rider and recycles its slot. out->stats is left untouched.
    void Harvest(size_t slot, SearchResult* out);
    size_t active() const { return valid() ? scan_->active() : 0; }
    bool empty() const { return !valid() || scan_->empty(); }

   private:
    friend class EmbeddingSearcher;
    const EmbeddingSearcher* searcher_ = nullptr;
    std::shared_ptr<const IndexSnapshot> snap_;
    std::unique_ptr<ann::FlatIndex::SharedScan> scan_;
    std::vector<float> qbuf_;            // one encoded query
    std::vector<ann::Neighbor> hitbuf_;  // Harvest staging
  };

  /// Opens a streaming scan session against the current snapshot.
  StreamScan NewStreamScan() const;

  /// Published vectors in the current index, tombstones included.
  size_t index_size() const;
  /// index_size() minus tombstones: the number of searchable columns.
  size_t live_size() const;

  /// The current ANN index. Calling this before an index exists is a
  /// programming error and aborts with a message. The reference is only
  /// stable while no concurrent Compact/BuildIndex swaps the snapshot —
  /// concurrent callers pin via PinSnapshot() instead.
  const ann::VectorIndex& index() const;

 private:
  // ---- Writer token (LevelDB-style) ----
  // Mutators (BuildIndex commit, AddColumn, RemoveColumn, Compact,
  // publish, recovery, LoadIndex) hold the exclusive writer token for
  // their whole operation — including WAL appends and checkpoint saves —
  // while holding NO mutex, honouring the lock-discipline rule that
  // blocking I/O never runs inside a critical section (tools/dj_deadlock,
  // DESIGN.md §10). writer_mu_ guards only the token flag and is held for
  // the flag flip. Fields below marked "writer token" are accessed only
  // while holding it.
  void AcquireWriter() const;
  void ReleaseWriter() const;
  class WriterLock {
   public:
    explicit WriterLock(const EmbeddingSearcher* s) : s_(s) {
      s_->AcquireWriter();
    }
    ~WriterLock() { s_->ReleaseWriter(); }
    WriterLock(const WriterLock&) = delete;
    WriterLock& operator=(const WriterLock&) = delete;

   private:
    const EmbeddingSearcher* s_;
  };

  bool LiveLocked() const { return !dir_.empty(); }  // writer token

  /// Swaps the published snapshot (brief pointer-copy critical section).
  void Publish(std::shared_ptr<const IndexSnapshot> snap);

  // The *Locked suffix below means "writer token held", not a mutex.

  /// Bootstraps an empty index for the first incremental AddColumn.
  Status EnsureIndexLocked();

  /// The current in-memory state re-labelled with generation `gen`
  /// (writer-side view: the mutable IdMap).
  IndexSnapshot CurrentStateLocked(u64 gen) const;

  Status CompactLocked();

  /// Writes `state` as durable generation state.generation (checkpoint +
  /// fresh WAL + MANIFEST flip), retires the grandparent generation, and
  /// updates the live bookkeeping. On failure the previous generation and
  /// the currently-open WAL stay authoritative. Does NOT swap the
  /// in-memory snapshot — callers decide (Compact swaps only on success).
  Status PublishGenerationLocked(const IndexSnapshot& state);

  /// Re-establishes a durable generation after a WAL write error poisoned
  /// the current log (no-op when the WAL is healthy).
  Status RepairWalLocked();

  Status RecoverLocked();
  Status RecoverGenerationLocked(u64 gen, u64 manifest_prev);

  /// AddColumn/RemoveColumn bodies (writer token scope). `*lsn` is 0 when
  /// the mutation's WAL record was fsync'd inline (or there is no WAL);
  /// nonzero = the group-commit LSN the caller must WaitDurable() on
  /// AFTER releasing the writer token.
  Result<u32> AddColumnImpl(const lake::Column& column, u64* lsn);
  Status RemoveColumnImpl(u32 column_id, u64* lsn);

  Status WalAppendInsert(u32 column_id, i32 level,
                         const std::vector<float>& vec, u64* lsn);
  Status WalAppendRemove(u32 index_id, u64* lsn);

  /// Hands the tombstone-triggered auto-compact to config_.compaction_pool
  /// (at most one scheduled at a time). The scheduled task acquires the
  /// writer token itself; the mutator that tripped the threshold has
  /// already moved on.
  void ScheduleCompaction();

  std::string ManifestPath() const;
  std::string IndexPath(u64 gen) const;
  std::string WalPath(u64 gen) const;

  ColumnEncoder* encoder_;
  SearcherConfig config_;
  int dim_ = 0;

  /// Guards the published snapshot pointer only; held for a copy, never
  /// across a query or any I/O.
  mutable Mutex snapshot_mu_{"searcher.snapshot", rank::kSnapshot};
  std::shared_ptr<const IndexSnapshot> snapshot_ DJ_GUARDED_BY(snapshot_mu_);

  /// Guards the writer-token flag only (see AcquireWriter): held for flag
  /// flips and the CondVar wait, never across mutator work or I/O.
  mutable Mutex writer_mu_{"searcher.writer", rank::kSearcherWriter};
  mutable CondVar writer_cv_;
  mutable bool writer_busy_ DJ_GUARDED_BY(writer_mu_) = false;

  // ---- Writer-side state (writer token) ----
  /// Next column id to assign; equals index size while the id space is
  /// identity (no compaction yet).
  u32 next_column_id_ = 0;
  /// column id -> current index id for live (non-removed) columns.
  std::unordered_map<u32, u32> col_to_index_;
  /// Mutable alias of the published snapshot's IdMap (nullptr = identity).
  std::shared_ptr<IdMap> map_;

  // ---- Live durability state (writer token) ----
  std::string dir_;   ///< empty = in-memory only
  Env* env_ = nullptr;
  /// Current durable generation. Atomic only so generation() can read it
  /// without queueing behind a publish; all writes hold the writer token.
  std::atomic<u64> generation_{0};
  u64 prev_generation_ = 0;
  std::unique_ptr<WritableFile> wal_;
  /// Set when a WAL append/sync failed: the log may end in a torn record,
  /// so further appends would be unrecoverable. The next mutation rolls a
  /// fresh generation first (RepairWalLocked).
  bool wal_poisoned_ = false;
  std::string wal_buf_;  ///< record scratch

  /// Group-commit state (config_.wal_group_commit). Appends register an
  /// LSN under the writer token; acknowledgement waits happen AFTER the
  /// token is released, so one leader's fsync covers every record
  /// appended by followers in the meantime. A failed shared sync is
  /// sticky: every waiter covering unsynced records gets the error, and
  /// the next mutation repairs the WAL (RepairWalLocked).
  class WalCommitter {
   public:
    /// Rebinds to a fresh WAL file (writer token held; callers Drain()
    /// first so no in-flight sync touches the old file).
    void Reset(WritableFile* file);
    /// Registers one appended record (writer token held); returns its LSN
    /// (1-based per WAL file).
    u64 RecordAppended();
    /// Blocks until every record up to `lsn` is durable or the commit
    /// fails. Called WITHOUT the writer token. `window_ms` is how long a
    /// leader lingers for followers before syncing.
    [[nodiscard]] Status WaitDurable(u64 lsn, double window_ms);
    /// Waits out any in-flight sync (writer token held; used before the
    /// WAL file is swapped).
    void Drain();
    /// Sticky error from a failed shared sync (OK when healthy; cleared
    /// by Reset).
    Status Error() const;

   private:
    mutable Mutex mu_{"searcher.wal_commit", rank::kWalCommit};
    mutable CondVar cv_;
    WritableFile* file_ DJ_GUARDED_BY(mu_) = nullptr;
    u64 appended_ DJ_GUARDED_BY(mu_) = 0;
    u64 durable_ DJ_GUARDED_BY(mu_) = 0;
    bool sync_active_ DJ_GUARDED_BY(mu_) = false;
    Status error_ DJ_GUARDED_BY(mu_);
  };
  WalCommitter committer_;

  /// True while an auto-compact is queued/running on compaction_pool.
  std::atomic<bool> compact_scheduled_{false};
};

}  // namespace core
}  // namespace deepjoin

#endif  // DEEPJOIN_CORE_SEARCHER_H_
