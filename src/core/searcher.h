// Embedding-based retrieval (paper §3.3): offline, every repository column
// is encoded and indexed; online, the query column is encoded and its k
// nearest neighbours under Euclidean distance are the discovery results.
// DeepJoin and all embedding baselines share this searcher (as in §5.1,
// "other methods involving column embedding follow the same ANNS scheme").
#ifndef DEEPJOIN_CORE_SEARCHER_H_
#define DEEPJOIN_CORE_SEARCHER_H_

#include <memory>
#include <vector>

#include "ann/hnsw.h"
#include "ann/ivfpq.h"
#include "core/encoders.h"
#include "util/alloc_guard.h"
#include "util/env.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace deepjoin {
namespace core {

enum class AnnBackend { kFlat, kHnsw, kIvfPq };

struct SearcherConfig {
  AnnBackend backend = AnnBackend::kHnsw;
  int hnsw_M = 16;
  int hnsw_ef_construction = 120;
  int hnsw_ef_search = 64;  ///< default beam; override per query instead
  int ivfpq_nlist = 64;
  int ivfpq_m = 8;
  int ivfpq_nbits = 6;
  int ivfpq_nprobe = 8;  ///< default probe budget; override per query
};

/// Per-call search options. Replaces the old positional `k` — and the old
/// pattern of mutating SearcherConfig/set_ef_search between calls, which
/// raced with concurrent searches. Overrides ride with the query.
struct SearchOptions {
  size_t k = 10;
  /// > 0: HNSW layer-0 beam width for this query only.
  int ef_search = 0;
  /// > 0: IVFPQ coarse cells scanned for this query only.
  int nprobe = 0;
  /// Collect a per-query trace::QueryStats breakdown. Off: SearchResult
  /// carries ids only and no trace machinery runs for this query.
  bool collect_stats = true;
};

/// Offline build cost breakdown (out-param of BuildIndex).
struct BuildStats {
  size_t columns = 0;        ///< columns encoded + indexed
  trace::QueryStats trace;   ///< searcher.build span tree
};

class EmbeddingSearcher {
 public:
  /// `encoder` must outlive the searcher.
  EmbeddingSearcher(ColumnEncoder* encoder, const SearcherConfig& config);

  /// Encodes and indexes the whole repository (offline phase). When a
  /// thread pool is given, the encoding stage — the dominant cost — runs
  /// in parallel across columns. Fails (InvalidArgument) for an IVFPQ
  /// backend with an empty repository: its quantizer needs training data.
  /// On `stats`, reports the build cost breakdown.
  [[nodiscard]] Status BuildIndex(const lake::Repository& repo,
                                  ThreadPool* pool = nullptr,
                                  BuildStats* stats = nullptr);

  /// Incrementally adds one column to an existing index (new tables
  /// landing in the lake); returns its index id (== repository position
  /// when adds mirror repository appends). HNSW and flat support this
  /// natively; IVFPQ requires a trained quantizer, i.e. a prior
  /// BuildIndex — without one this returns FailedPrecondition.
  [[nodiscard]] Result<u32> AddColumn(const lake::Column& column);

  /// Persists / restores the built index (HNSW backend only — the others
  /// rebuild quickly). The encoder must be the same at load time. Saves
  /// are atomic (tmp + fsync + rename; a crash or failure leaves the
  /// previous artifact intact); corrupt files load as DataLoss, never an
  /// abort. `env` nullptr → Env::Default().
  Status SaveIndex(const std::string& path, Env* env = nullptr) const;
  Status LoadIndex(const std::string& path, Env* env = nullptr);

  struct SearchResult {
    std::vector<u32> ids;  ///< repository column ids, nearest first
    /// Per-query breakdown: span tree rooted at "searcher.search" (with
    /// "searcher.encode" / "searcher.ann" children) plus backend counters
    /// (hnsw.dist_evals, ivfpq.probes, ...). Empty when
    /// SearchOptions::collect_stats is false.
    trace::QueryStats stats;
  };

  /// Online top-k search for one query column.
  SearchResult Search(const lake::Column& query,
                      const SearchOptions& options = {});

  /// Allocation-free steady-state query path: encodes into thread-local
  /// capacity-reusing scratch, runs the index through
  /// VectorIndex::SearchInto, and refills out->ids in place. Search()
  /// forwards here. The DJ_NOALLOC contract (enforced by tools/dj_alloc
  /// and the guard-enabled searcher test) covers the steady state: scratch
  /// and pools warmed up, options.collect_stats == false (a TraceCollector
  /// allocates by design), and an HNSW backend (the flat/IVFPQ SearchInto
  /// default still builds a result vector).
  DJ_NOALLOC void SearchInto(const lake::Column& query,
                             const SearchOptions& options, SearchResult* out);

  /// Batched search across a thread pool — the accelerated path standing
  /// in for the paper's GPU rows (see DESIGN.md). Per-query stats report
  /// the encode stage amortised (batch encode time / batch size — the
  /// stage runs batched, so that's its true per-query cost) and the ANN
  /// stage exactly.
  std::vector<SearchResult> SearchBatch(
      const std::vector<lake::Column>& queries, const SearchOptions& options,
      ThreadPool* pool);

  size_t index_size() const { return index_ ? index_->size() : 0; }
  /// The built ANN index. Calling this before BuildIndex()/LoadIndex()
  /// is a programming error and aborts with a message (it used to
  /// dereference null).
  const ann::VectorIndex& index() const {
    DJ_CHECK_MSG(index_ != nullptr,
                 "EmbeddingSearcher::index() before BuildIndex()/LoadIndex()");
    return *index_;
  }

 private:
  ColumnEncoder* encoder_;
  SearcherConfig config_;
  std::unique_ptr<ann::VectorIndex> index_;
  int dim_ = 0;
};

}  // namespace core
}  // namespace deepjoin

#endif  // DEEPJOIN_CORE_SEARCHER_H_
