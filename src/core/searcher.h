// Embedding-based retrieval (paper §3.3): offline, every repository column
// is encoded and indexed; online, the query column is encoded and its k
// nearest neighbours under Euclidean distance are the discovery results.
// DeepJoin and all embedding baselines share this searcher (as in §5.1,
// "other methods involving column embedding follow the same ANNS scheme").
#ifndef DEEPJOIN_CORE_SEARCHER_H_
#define DEEPJOIN_CORE_SEARCHER_H_

#include <memory>
#include <vector>

#include "ann/hnsw.h"
#include "ann/ivfpq.h"
#include "core/encoders.h"
#include "util/env.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace deepjoin {
namespace core {

enum class AnnBackend { kFlat, kHnsw, kIvfPq };

struct SearcherConfig {
  AnnBackend backend = AnnBackend::kHnsw;
  int hnsw_M = 16;
  int hnsw_ef_construction = 120;
  int hnsw_ef_search = 64;
  int ivfpq_nlist = 64;
  int ivfpq_m = 8;
  int ivfpq_nbits = 6;
  int ivfpq_nprobe = 8;
};

class EmbeddingSearcher {
 public:
  /// `encoder` must outlive the searcher.
  EmbeddingSearcher(ColumnEncoder* encoder, const SearcherConfig& config);

  /// Encodes and indexes the whole repository (offline phase). When a
  /// thread pool is given, the encoding stage — the dominant cost — runs
  /// in parallel across columns.
  void BuildIndex(const lake::Repository& repo, ThreadPool* pool = nullptr);

  /// Incrementally adds one column to an existing index (new tables
  /// landing in the lake); returns its index id (== repository position
  /// when adds mirror repository appends). HNSW and flat support this
  /// natively; IVFPQ requires a trained quantizer, i.e. a prior
  /// BuildIndex.
  u32 AddColumn(const lake::Column& column);

  /// Persists / restores the built index (HNSW backend only — the others
  /// rebuild quickly). The encoder must be the same at load time. Saves
  /// are atomic (tmp + fsync + rename; a crash or failure leaves the
  /// previous artifact intact); corrupt files load as DataLoss, never an
  /// abort. `env` nullptr → Env::Default().
  Status SaveIndex(const std::string& path, Env* env = nullptr) const;
  Status LoadIndex(const std::string& path, Env* env = nullptr);

  struct SearchOutput {
    std::vector<u32> ids;   ///< repository column ids, nearest first
    double encode_ms = 0.0; ///< column-to-text + embedding time
    double total_ms = 0.0;  ///< encode + ANNS
  };

  /// Online top-k search for one query column.
  SearchOutput Search(const lake::Column& query, size_t k);

  /// Batched search across a thread pool — the accelerated path standing
  /// in for the paper's GPU rows (see DESIGN.md). Per-query timings report
  /// amortised wall-clock: batch time / batch size.
  std::vector<SearchOutput> SearchBatch(
      const std::vector<lake::Column>& queries, size_t k, ThreadPool* pool);

  size_t index_size() const { return index_ ? index_->size() : 0; }
  const ann::VectorIndex& index() const { return *index_; }

 private:
  ColumnEncoder* encoder_;
  SearcherConfig config_;
  std::unique_ptr<ann::VectorIndex> index_;
  int dim_ = 0;
};

}  // namespace core
}  // namespace deepjoin

#endif  // DEEPJOIN_CORE_SEARCHER_H_
