// Persistence for fine-tuned DeepJoin encoders: fine-tune once, serve many
// sessions. The file carries the encoder config, the frozen vocabulary and
// every transformer parameter; the cell-frequency dictionary used by the
// column-to-text budget is repository state and is *not* stored — reattach
// it via set_transform_config after loading if frequency-based cell
// selection is wanted.
#ifndef DEEPJOIN_CORE_MODEL_IO_H_
#define DEEPJOIN_CORE_MODEL_IO_H_

#include <memory>
#include <string>

#include "core/encoders.h"
#include "util/status.h"

namespace deepjoin {
namespace core {

/// Writes `encoder` to `path`. Overwrites. Returns IoError on failure.
Status SaveEncoder(PlmColumnEncoder& encoder, const std::string& path);

/// Reads an encoder previously written by SaveEncoder. Embeddings produced
/// by the loaded encoder are bit-identical to the saved one's.
Result<std::unique_ptr<PlmColumnEncoder>> LoadEncoder(
    const std::string& path);

}  // namespace core
}  // namespace deepjoin

#endif  // DEEPJOIN_CORE_MODEL_IO_H_
