// Persistence for fine-tuned DeepJoin encoders: fine-tune once, serve many
// sessions. The file carries the encoder config, the frozen vocabulary and
// every transformer parameter; the cell-frequency dictionary used by the
// column-to-text budget is repository state and is *not* stored — reattach
// it via set_transform_config after loading if frequency-based cell
// selection is wanted.
//
// Artifacts use the CRC32C-framed container of util/binary_io.h. Saves are
// atomic (tmp + fsync + rename): a crash mid-save leaves the previous file
// intact. Loads never abort — corruption surfaces as Status::DataLoss.
#ifndef DEEPJOIN_CORE_MODEL_IO_H_
#define DEEPJOIN_CORE_MODEL_IO_H_

#include <memory>
#include <string>

#include "core/encoders.h"
#include "util/env.h"
#include "util/status.h"

namespace deepjoin {
namespace core {

/// Atomically replaces `path` with a serialized `encoder`. On failure the
/// previous artifact (if any) is untouched. `env` nullptr → Env::Default().
Status SaveEncoder(PlmColumnEncoder& encoder, const std::string& path,
                   Env* env = nullptr);

/// Reads an encoder previously written by SaveEncoder. Embeddings produced
/// by the loaded encoder are bit-identical to the saved one's. Truncated
/// or corrupt files return DataLoss; mismatched layouts InvalidArgument.
Result<std::unique_ptr<PlmColumnEncoder>> LoadEncoder(const std::string& path,
                                                      Env* env = nullptr);

}  // namespace core
}  // namespace deepjoin

#endif  // DEEPJOIN_CORE_MODEL_IO_H_
