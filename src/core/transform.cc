#include "core/transform.h"

#include <algorithm>
#include <numeric>

#include "text/tokenizer.h"
#include "util/string_util.h"

namespace deepjoin {
namespace core {

const std::vector<TransformOption>& AllTransformOptions() {
  static const std::vector<TransformOption> kAll = {
      TransformOption::kCol,
      TransformOption::kColnameCol,
      TransformOption::kColnameColContext,
      TransformOption::kColnameStatCol,
      TransformOption::kTitleColnameCol,
      TransformOption::kTitleColnameColContext,
      TransformOption::kTitleColnameStatCol,
  };
  return kAll;
}

const char* TransformOptionName(TransformOption option) {
  switch (option) {
    case TransformOption::kCol: return "col";
    case TransformOption::kColnameCol: return "colname-col";
    case TransformOption::kColnameColContext: return "colname-col-context";
    case TransformOption::kColnameStatCol: return "colname-stat-col";
    case TransformOption::kTitleColnameCol: return "title-colname-col";
    case TransformOption::kTitleColnameColContext:
      return "title-colname-col-context";
    case TransformOption::kTitleColnameStatCol:
      return "title-colname-stat-col";
  }
  return "unknown";
}

std::vector<std::string> SelectCells(const lake::Column& column,
                                     const TransformConfig& config) {
  const size_t n = column.cells.size();
  if (config.cell_budget <= 0 ||
      n <= static_cast<size_t>(config.cell_budget)) {
    return column.cells;
  }
  const size_t budget = static_cast<size_t>(config.cell_budget);
  if (config.dict == nullptr) {
    // Naive truncation (ablation arm).
    return {column.cells.begin(),
            column.cells.begin() + static_cast<long>(budget)};
  }
  // Keep the `budget` highest-document-frequency cells, original order.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const auto ta = config.dict->Lookup(column.cells[a]);
    const auto tb = config.dict->Lookup(column.cells[b]);
    const u32 fa = ta ? config.dict->DocFreq(*ta) : 0;
    const u32 fb = tb ? config.dict->DocFreq(*tb) : 0;
    return fa > fb;
  });
  order.resize(budget);
  std::sort(order.begin(), order.end());  // restore original order
  std::vector<std::string> out;
  out.reserve(budget);
  for (size_t i : order) out.push_back(column.cells[i]);
  return out;
}

namespace {

struct CellStats {
  size_t n = 0;
  size_t max_words = 0;
  size_t min_words = 0;
  double avg_words = 0.0;
};

CellStats ComputeStats(const lake::Column& column) {
  CellStats s;
  s.n = column.cells.size();
  if (s.n == 0) return s;
  size_t total = 0;
  s.min_words = static_cast<size_t>(-1);
  for (const auto& cell : column.cells) {
    const size_t w = CountWords(cell);
    s.max_words = std::max(s.max_words, w);
    s.min_words = std::min(s.min_words, w);
    total += w;
  }
  s.avg_words = static_cast<double>(total) / static_cast<double>(s.n);
  return s;
}

}  // namespace

std::string TransformColumn(const lake::Column& column,
                            const TransformConfig& config) {
  const std::vector<std::string> cells = SelectCells(column, config);
  const std::string col = Join(cells, ", ");
  const std::string& name = column.meta.column_name;
  const std::string& title = column.meta.table_title;
  const std::string& context = column.meta.context;

  auto colname_col = [&] { return name + ": " + col + "."; };
  auto colname_stat_col = [&] {
    const CellStats s = ComputeStats(column);
    return name + " contains " + std::to_string(s.n) + " values (" +
           std::to_string(s.max_words) + ", " + std::to_string(s.min_words) +
           ", " + FormatDouble(s.avg_words, 2) + "): " + col + ".";
  };

  switch (config.option) {
    case TransformOption::kCol:
      return col;
    case TransformOption::kColnameCol:
      return colname_col();
    case TransformOption::kColnameColContext:
      return colname_col() + " " + context;
    case TransformOption::kColnameStatCol:
      return colname_stat_col();
    case TransformOption::kTitleColnameCol:
      return title + ". " + colname_col();
    case TransformOption::kTitleColnameColContext:
      return title + ". " + colname_col() + " " + context;
    case TransformOption::kTitleColnameStatCol:
      return title + ". " + colname_stat_col();
  }
  return col;
}

}  // namespace core
}  // namespace deepjoin
