#include "core/transform.h"

#include <algorithm>
#include <numeric>

#include "text/tokenizer.h"
#include "util/string_util.h"

namespace deepjoin {
namespace core {

const std::vector<TransformOption>& AllTransformOptions() {
  static const std::vector<TransformOption> kAll = {
      TransformOption::kCol,
      TransformOption::kColnameCol,
      TransformOption::kColnameColContext,
      TransformOption::kColnameStatCol,
      TransformOption::kTitleColnameCol,
      TransformOption::kTitleColnameColContext,
      TransformOption::kTitleColnameStatCol,
  };
  return kAll;
}

const char* TransformOptionName(TransformOption option) {
  switch (option) {
    case TransformOption::kCol: return "col";
    case TransformOption::kColnameCol: return "colname-col";
    case TransformOption::kColnameColContext: return "colname-col-context";
    case TransformOption::kColnameStatCol: return "colname-stat-col";
    case TransformOption::kTitleColnameCol: return "title-colname-col";
    case TransformOption::kTitleColnameColContext:
      return "title-colname-col-context";
    case TransformOption::kTitleColnameStatCol:
      return "title-colname-stat-col";
  }
  return "unknown";
}

void SelectCellIndices(const lake::Column& column,
                       const TransformConfig& config,
                       TransformScratch* scratch) {
  std::vector<size_t>& sel = scratch->selected;
  sel.clear();
  const size_t n = column.cells.size();
  if (config.cell_budget <= 0 ||
      n <= static_cast<size_t>(config.cell_budget)) {
    // Scratch buffers reuse capacity across calls; growth is warmup-only.
    for (size_t i = 0; i < n; ++i) sel.push_back(i);  // dj_alloc: allow(alloc)
    return;
  }
  const size_t budget = static_cast<size_t>(config.cell_budget);
  if (config.dict == nullptr) {
    // Naive truncation (ablation arm).
    for (size_t i = 0; i < budget; ++i) {
      sel.push_back(i);  // dj_alloc: allow(alloc) -- capacity-reusing scratch
    }
    return;
  }
  // Keep the `budget` highest-document-frequency cells, original order.
  std::vector<size_t>& order = scratch->order;
  order.resize(n);  // dj_alloc: allow(alloc) -- capacity-reusing scratch
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const auto ta = config.dict->Lookup(column.cells[a]);
    const auto tb = config.dict->Lookup(column.cells[b]);
    const u32 fa = ta ? config.dict->DocFreq(*ta) : 0;
    const u32 fb = tb ? config.dict->DocFreq(*tb) : 0;
    return fa > fb;
  });
  // Keep the top `budget` entries (erase: shrinking never reallocates).
  order.erase(order.begin() + static_cast<long>(budget), order.end());
  std::sort(order.begin(), order.end());  // restore original order
  for (size_t i : order) {
    sel.push_back(i);  // dj_alloc: allow(alloc) -- capacity-reusing scratch
  }
}

std::vector<std::string> SelectCells(const lake::Column& column,
                                     const TransformConfig& config) {
  TransformScratch scratch;
  SelectCellIndices(column, config, &scratch);
  std::vector<std::string> out;
  out.reserve(scratch.selected.size());
  for (size_t i : scratch.selected) out.push_back(column.cells[i]);
  return out;
}

namespace {

struct CellStats {
  size_t n = 0;
  size_t max_words = 0;
  size_t min_words = 0;
  double avg_words = 0.0;
};

CellStats ComputeStats(const lake::Column& column) {
  CellStats s;
  s.n = column.cells.size();
  if (s.n == 0) return s;
  size_t total = 0;
  s.min_words = static_cast<size_t>(-1);
  for (const auto& cell : column.cells) {
    const size_t w = CountWords(cell);
    s.max_words = std::max(s.max_words, w);
    s.min_words = std::min(s.min_words, w);
    total += w;
  }
  s.avg_words = static_cast<double>(total) / static_cast<double>(s.n);
  return s;
}

/// Append into a capacity-reusing output buffer. The one place the
/// transform path touches string growth: steady state reuses capacity,
/// so the site carries the layer's single suppression.
void AppendStr(std::string_view s, std::string* out) {
  out->append(s);  // dj_alloc: allow(alloc) -- capacity-reusing out buffer
}

}  // namespace

void TransformColumnInto(const lake::Column& column,
                         const TransformConfig& config,
                         TransformScratch* scratch, std::string* out) {
  out->clear();
  SelectCellIndices(column, config, scratch);
  const std::vector<size_t>& sel = scratch->selected;
  const std::string& name = column.meta.column_name;
  const std::string& title = column.meta.table_title;
  const std::string& context = column.meta.context;

  auto append_col = [&] {
    for (size_t i = 0; i < sel.size(); ++i) {
      if (i != 0) AppendStr(", ", out);
      AppendStr(column.cells[sel[i]], out);
    }
  };
  auto append_colname_col = [&] {
    AppendStr(name, out);
    AppendStr(": ", out);
    append_col();
    AppendStr(".", out);
  };
  auto append_colname_stat_col = [&] {
    const CellStats s = ComputeStats(column);
    AppendStr(name, out);
    AppendStr(" contains ", out);
    AppendU64(s.n, out);
    AppendStr(" values (", out);
    AppendU64(s.max_words, out);
    AppendStr(", ", out);
    AppendU64(s.min_words, out);
    AppendStr(", ", out);
    AppendFixed(s.avg_words, 2, out);
    AppendStr("): ", out);
    append_col();
    AppendStr(".", out);
  };
  auto append_title = [&] {
    AppendStr(title, out);
    AppendStr(". ", out);
  };
  auto append_context = [&] {
    AppendStr(" ", out);
    AppendStr(context, out);
  };

  switch (config.option) {
    case TransformOption::kCol:
      append_col();
      return;
    case TransformOption::kColnameCol:
      append_colname_col();
      return;
    case TransformOption::kColnameColContext:
      append_colname_col();
      append_context();
      return;
    case TransformOption::kColnameStatCol:
      append_colname_stat_col();
      return;
    case TransformOption::kTitleColnameCol:
      append_title();
      append_colname_col();
      return;
    case TransformOption::kTitleColnameColContext:
      append_title();
      append_colname_col();
      append_context();
      return;
    case TransformOption::kTitleColnameStatCol:
      append_title();
      append_colname_stat_col();
      return;
  }
  append_col();
}

std::string TransformColumn(const lake::Column& column,
                            const TransformConfig& config) {
  TransformScratch scratch;
  std::string out;
  TransformColumnInto(column, config, &scratch, &out);
  return out;
}

}  // namespace core
}  // namespace deepjoin
