#include "core/model_io.h"

#include "util/binary_io.h"

namespace deepjoin {
namespace core {

namespace {
constexpr u32 kMagic = 0xDEE90101;  // format id + version
}  // namespace

Status SaveEncoder(PlmColumnEncoder& encoder, const std::string& path) {
  BinaryWriter writer(path);
  if (!writer.ok()) return Status::IoError("cannot open " + path);

  writer.WriteU32(kMagic);
  const PlmEncoderConfig& cfg = encoder.config();
  writer.WriteU32(cfg.kind == PlmKind::kDistilSim ? 0u : 1u);
  writer.WriteU32(static_cast<u32>(cfg.transform.option));
  writer.WriteI32(cfg.transform.cell_budget);
  writer.WriteI32(cfg.max_words);
  writer.WriteI32(cfg.oov_buckets);
  writer.WriteI32(cfg.max_seq_len);
  writer.WriteU64(cfg.seed);

  encoder.vocab().Save(writer);

  const auto& store = encoder.transformer().params();
  writer.WriteU64(store.params().size());
  for (size_t i = 0; i < store.params().size(); ++i) {
    const auto& p = store.params()[i];
    writer.WriteString(store.names()[i]);
    writer.WriteI32(p->value().rows());
    writer.WriteI32(p->value().cols());
    writer.WriteFloatArray(p->value().data(), p->value().size());
  }
  return writer.Close();
}

Result<std::unique_ptr<PlmColumnEncoder>> LoadEncoder(
    const std::string& path) {
  BinaryReader reader(path);
  if (!reader.ok()) return Status::IoError("cannot open " + path);
  if (reader.ReadU32() != kMagic) {
    return Status::InvalidArgument(path + ": not a DeepJoin encoder file");
  }
  PlmEncoderConfig cfg;
  cfg.kind = reader.ReadU32() == 0 ? PlmKind::kDistilSim : PlmKind::kMPNetSim;
  cfg.transform.option = static_cast<TransformOption>(reader.ReadU32());
  cfg.transform.cell_budget = reader.ReadI32();
  cfg.max_words = reader.ReadI32();
  cfg.oov_buckets = reader.ReadI32();
  cfg.max_seq_len = reader.ReadI32();
  cfg.seed = reader.ReadU64();

  Vocab vocab = Vocab::Load(reader);
  auto encoder = std::make_unique<PlmColumnEncoder>(cfg, std::move(vocab));

  auto& store = encoder->transformer().params();
  const u64 n = reader.ReadU64();
  if (n != store.params().size()) {
    return Status::InvalidArgument("parameter count mismatch");
  }
  for (u64 i = 0; i < n; ++i) {
    const std::string name = reader.ReadString();
    const i32 rows = reader.ReadI32();
    const i32 cols = reader.ReadI32();
    auto& p = store.params()[i];
    if (name != store.names()[i] || rows != p->value().rows() ||
        cols != p->value().cols()) {
      return Status::InvalidArgument("parameter layout mismatch at " + name);
    }
    auto data = reader.ReadFloatArray();
    if (data.size() != p->value().size()) {
      return Status::InvalidArgument("parameter size mismatch at " + name);
    }
    std::copy(data.begin(), data.end(), p->mutable_value().data());
  }
  if (!reader.ok()) return Status::IoError("truncated file: " + path);
  return encoder;
}

}  // namespace core
}  // namespace deepjoin
