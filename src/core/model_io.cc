#include "core/model_io.h"

#include <algorithm>
#include <vector>

#include "util/binary_io.h"

namespace deepjoin {
namespace core {

namespace {
// Bumped to ..02 when the container moved to the CRC32C-framed record
// format (util/binary_io.h); ..01 files predate checksums.
constexpr u32 kMagic = 0xDEE90102;
constexpr u32 kNumTransformOptions = 7;  // keep in sync with TransformOption
}  // namespace

Status SaveEncoder(PlmColumnEncoder& encoder, const std::string& path,
                   Env* env) {
  return AtomicSave(path, env, [&encoder](BinaryWriter& writer) -> Status {
    writer.WriteU32(kMagic);
    const PlmEncoderConfig& cfg = encoder.config();
    writer.WriteU32(cfg.kind == PlmKind::kDistilSim ? 0u : 1u);
    writer.WriteU32(static_cast<u32>(cfg.transform.option));
    writer.WriteI32(cfg.transform.cell_budget);
    writer.WriteI32(cfg.max_words);
    writer.WriteI32(cfg.oov_buckets);
    writer.WriteI32(cfg.max_seq_len);
    writer.WriteU64(cfg.seed);

    encoder.vocab().Save(writer);

    const auto& store = encoder.transformer().params();
    writer.WriteU64(store.params().size());
    for (size_t i = 0; i < store.params().size(); ++i) {
      const auto& p = store.params()[i];
      writer.WriteString(store.names()[i]);
      writer.WriteI32(p->value().rows());
      writer.WriteI32(p->value().cols());
      writer.WriteFloatArray(p->value().data(), p->value().size());
    }
    return writer.status();
  });
}

Result<std::unique_ptr<PlmColumnEncoder>> LoadEncoder(const std::string& path,
                                                      Env* env) {
  BinaryReader reader(path, env);
  DJ_RETURN_IF_ERROR(reader.Open());
  u32 magic = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU32(&magic));
  if (magic != kMagic) {
    return Status::DataLoss(path + ": not a DeepJoin encoder file");
  }
  PlmEncoderConfig cfg;
  u32 kind_raw = 0;
  u32 option_raw = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU32(&kind_raw));
  DJ_RETURN_IF_ERROR(reader.ReadU32(&option_raw));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&cfg.transform.cell_budget));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&cfg.max_words));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&cfg.oov_buckets));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&cfg.max_seq_len));
  DJ_RETURN_IF_ERROR(reader.ReadU64(&cfg.seed));
  if (kind_raw > 1 || option_raw >= kNumTransformOptions ||
      cfg.max_words < 0 || cfg.oov_buckets < 0 || cfg.max_seq_len <= 0 ||
      cfg.max_seq_len > (1 << 20)) {
    return Status::DataLoss(path + ": encoder config out of range");
  }
  cfg.kind = kind_raw == 0 ? PlmKind::kDistilSim : PlmKind::kMPNetSim;
  cfg.transform.option = static_cast<TransformOption>(option_raw);

  auto vocab = Vocab::Load(reader);
  if (!vocab.ok()) return vocab.status();

  // Parse every parameter record BEFORE building the encoder: transformer
  // construction runs the full random init (expensive), so a corrupt file
  // must be rejected without paying for it.
  struct RawParam {
    std::string name;
    i32 rows = 0;
    i32 cols = 0;
    std::vector<float> data;
  };
  u64 n = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU64(&n));
  std::vector<RawParam> raw;
  raw.reserve(static_cast<size_t>(std::min<u64>(n, 1024)));
  for (u64 i = 0; i < n; ++i) {
    RawParam p;
    DJ_RETURN_IF_ERROR(reader.ReadString(&p.name));
    DJ_RETURN_IF_ERROR(reader.ReadI32(&p.rows));
    DJ_RETURN_IF_ERROR(reader.ReadI32(&p.cols));
    DJ_RETURN_IF_ERROR(reader.ReadFloatArray(&p.data));
    raw.push_back(std::move(p));
  }

  auto encoder =
      std::make_unique<PlmColumnEncoder>(cfg, std::move(vocab).value());
  auto& store = encoder->transformer().params();
  if (n != store.params().size()) {
    return Status::InvalidArgument("parameter count mismatch");
  }
  for (u64 i = 0; i < n; ++i) {
    const RawParam& r = raw[i];
    auto& p = store.params()[i];
    if (r.name != store.names()[i] || r.rows != p->value().rows() ||
        r.cols != p->value().cols()) {
      return Status::InvalidArgument("parameter layout mismatch at " + r.name);
    }
    if (r.data.size() != p->value().size()) {
      return Status::InvalidArgument("parameter size mismatch at " + r.name);
    }
    std::copy(r.data.begin(), r.data.end(), p->mutable_value().data());
  }
  return encoder;
}

}  // namespace core
}  // namespace deepjoin
