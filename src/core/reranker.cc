#include "core/reranker.h"

#include "util/timer.h"
#include "util/top_k.h"

namespace deepjoin {
namespace core {

TwoStageSearcher::TwoStageSearcher(EmbeddingSearcher* searcher,
                                   const join::TokenizedRepository* tok,
                                   const join::ColumnVectorStore* store,
                                   const FastTextEmbedder* cell_embedder,
                                   const TwoStageConfig& config)
    : searcher_(searcher),
      tok_(tok),
      store_(store),
      cell_embedder_(cell_embedder),
      config_(config) {
  if (config_.semantic) {
    DJ_CHECK_MSG(store_ != nullptr && cell_embedder_ != nullptr,
                 "semantic re-ranking needs a vector store and embedder");
  } else {
    DJ_CHECK_MSG(tok_ != nullptr, "equi re-ranking needs a tokenized repo");
  }
}

TwoStageSearcher::Output TwoStageSearcher::Search(const lake::Column& query,
                                                  size_t k) {
  Output out;
  WallTimer total;
  const size_t pool = std::max<size_t>(k, k * config_.pool_multiplier);
  auto stage1 = searcher_->Search(query, pool);
  out.encode_ms = stage1.encode_ms;

  TopK top(k);
  if (config_.semantic) {
    const auto qv = join::ColumnVectorStore::EmbedColumn(query,
                                                         *cell_embedder_);
    for (u32 id : stage1.ids) {
      const double jn = join::SemanticJoinability(
          qv.data(), query.cells.size(), store_->column_vectors(id),
          store_->column_count(id), store_->dim(), config_.tau);
      top.Push(jn, id);
    }
  } else {
    const auto qt = tok_->EncodeQuery(query);
    for (u32 id : stage1.ids) {
      top.Push(join::EquiJoinability(qt, tok_->columns()[id]), id);
    }
  }
  out.results = top.Take();
  out.total_ms = total.ElapsedMillis();
  return out;
}

}  // namespace core
}  // namespace deepjoin
