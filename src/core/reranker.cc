#include "core/reranker.h"

#include <algorithm>

#include "util/top_k.h"

namespace deepjoin {
namespace core {

TwoStageSearcher::TwoStageSearcher(EmbeddingSearcher* searcher,
                                   const join::TokenizedRepository* tok,
                                   const join::ColumnVectorStore* store,
                                   const FastTextEmbedder* cell_embedder,
                                   const TwoStageConfig& config)
    : searcher_(searcher),
      tok_(tok),
      store_(store),
      cell_embedder_(cell_embedder),
      config_(config) {
  if (config_.semantic) {
    DJ_CHECK_MSG(store_ != nullptr && cell_embedder_ != nullptr,
                 "semantic re-ranking needs a vector store and embedder");
  } else {
    DJ_CHECK_MSG(tok_ != nullptr, "equi re-ranking needs a tokenized repo");
  }
}

TwoStageSearcher::Output TwoStageSearcher::Search(
    const lake::Column& query, const SearchOptions& options) {
  Output out;
  trace::TraceCollector collector(options.collect_stats);
  trace::QueryStats stage1_stats;
  {
    DJ_TRACE_SPAN("twostage.search");
    SearchOptions pool_options = options;
    pool_options.k =
        std::max<size_t>(options.k, options.k * config_.pool_multiplier);
    // The searcher installs its own nested collector; its breakdown comes
    // back in stage1.stats and is grafted below.
    auto stage1 = searcher_->Search(query, pool_options);
    stage1_stats = std::move(stage1.stats);

    DJ_TRACE_SPAN("twostage.rerank");
    TopK top(options.k);
    if (config_.semantic) {
      const auto qv = join::ColumnVectorStore::EmbedColumn(query,
                                                           *cell_embedder_);
      for (u32 id : stage1.ids) {
        const double jn = join::SemanticJoinability(
            qv.data(), query.cells.size(), store_->column_vectors(id),
            store_->column_count(id), store_->dim(), config_.tau);
        top.Push(jn, id);
      }
    } else {
      const auto qt = tok_->EncodeQuery(query);
      for (u32 id : stage1.ids) {
        top.Push(join::EquiJoinability(qt, tok_->columns()[id]), id);
      }
    }
    trace::Count("twostage.candidates", stage1.ids.size());
    out.results = top.Take();
  }
  if (options.collect_stats) {
    out.stats = collector.Finish();
    // Graft the stage-1 tree as the first child and fold its per-query
    // counters into ours.
    out.stats.root.children.insert(out.stats.root.children.begin(),
                                   std::move(stage1_stats.root));
    for (auto& c : stage1_stats.counters) {
      bool merged = false;
      for (auto& mine : out.stats.counters) {
        if (mine.name == c.name) {
          mine.value += c.value;
          merged = true;
          break;
        }
      }
      if (!merged) out.stats.counters.push_back(std::move(c));
    }
    std::sort(out.stats.counters.begin(), out.stats.counters.end(),
              [](const trace::CounterDelta& a, const trace::CounterDelta& b) {
                return a.name < b.name;
              });
  }
  return out;
}

}  // namespace core
}  // namespace deepjoin
