#include "ann/ivfpq.h"

#include <algorithm>
#include <limits>

#include "util/top_k.h"
#include "util/trace.h"

namespace deepjoin {
namespace ann {

IvfPqIndex::IvfPqIndex(const IvfPqConfig& config) : config_(config) {
  DJ_CHECK(config_.dim > 0);
  DJ_CHECK_MSG(config_.dim % config_.m == 0, "dim must be divisible by m");
  DJ_CHECK(config_.nbits >= 1 && config_.nbits <= 8);
}

void IvfPqIndex::Train(const float* data, size_t n) {
  DJ_CHECK_MSG(!trained_, "Train() called twice");
  DJ_CHECK(n > 0);
  Rng rng(config_.seed);
  const int d = config_.dim;

  // Coarse quantizer.
  const int nlist = std::min<int>(config_.nlist, static_cast<int>(n));
  coarse_ = KMeans(data, n, d, nlist, config_.train_iters, rng);
  config_.nlist = nlist;
  list_ids_.resize(nlist);
  list_codes_.resize(nlist);

  if (config_.hnsw_coarse) {
    HnswConfig hc;
    hc.dim = d;
    hc.M = 8;
    hc.ef_construction = 80;
    hc.ef_search = std::max(16, config_.nprobe * 2);
    coarse_hnsw_ = std::make_unique<HnswIndex>(hc);
    for (int c = 0; c < nlist; ++c) {
      coarse_hnsw_->Add(&coarse_.centroids[static_cast<size_t>(c) * d]);
    }
  }

  // PQ codebooks over residuals of the training data.
  std::vector<float> residuals(n * static_cast<size_t>(d));
  for (size_t i = 0; i < n; ++i) {
    const float* v = data + i * d;
    const float* c =
        &coarse_.centroids[static_cast<size_t>(coarse_.assignments[i]) * d];
    for (int j = 0; j < d; ++j) residuals[i * d + j] = v[j] - c[j];
  }
  const int ds = dsub();
  const int ks = ksub();
  codebooks_.assign(static_cast<size_t>(config_.m) * ks * ds, 0.0f);
  std::vector<float> sub(n * static_cast<size_t>(ds));
  for (int s = 0; s < config_.m; ++s) {
    for (size_t i = 0; i < n; ++i) {
      std::copy(&residuals[i * d + static_cast<size_t>(s) * ds],
                &residuals[i * d + static_cast<size_t>(s) * ds + ds],
                &sub[i * ds]);
    }
    auto km = KMeans(sub.data(), n, ds, ks, config_.train_iters, rng);
    std::copy(km.centroids.begin(), km.centroids.end(),
              codebooks_.begin() + static_cast<size_t>(s) * ks * ds);
  }
  trained_ = true;
}

void IvfPqIndex::EncodeResidual(const float* r, u8* codes) const {
  const int ds = dsub();
  const int ks = ksub();
  for (int s = 0; s < config_.m; ++s) {
    const float* rsub = r + static_cast<size_t>(s) * ds;
    const float* cb = &codebooks_[static_cast<size_t>(s) * ks * ds];
    float best = std::numeric_limits<float>::max();
    int best_c = 0;
    for (int c = 0; c < ks; ++c) {
      const float dist =
          SquaredL2Distance(rsub, cb + static_cast<size_t>(c) * ds, ds);
      if (dist < best) {
        best = dist;
        best_c = c;
      }
    }
    codes[s] = static_cast<u8>(best_c);
  }
}

void IvfPqIndex::Add(const float* vec) {
  DJ_CHECK_MSG(trained_, "Add() before Train()");
  const int d = config_.dim;
  const u32 cell = NearestCentroid(coarse_, vec);
  std::vector<float> residual(d);
  const float* c = &coarse_.centroids[static_cast<size_t>(cell) * d];
  for (int j = 0; j < d; ++j) residual[j] = vec[j] - c[j];
  std::vector<u8> codes(config_.m);
  EncodeResidual(residual.data(), codes.data());
  list_ids_[cell].push_back(static_cast<u32>(count_));
  list_codes_[cell].insert(list_codes_[cell].end(), codes.begin(),
                           codes.end());
  ++count_;
}

std::vector<Neighbor> IvfPqIndex::Search(const float* query, size_t k,
                                         const AnnSearchParams& params) const {
  DJ_TRACE_SPAN("ivfpq.search");
  DJ_CHECK_MSG(trained_, "Search() before Train()");
  if (count_ == 0 || k == 0) return {};
  const int d = config_.dim;
  const int ds = dsub();
  const int ks = ksub();
  const int nprobe = params.nprobe > 0 ? params.nprobe : config_.nprobe;

  // Rank coarse cells.
  std::vector<Neighbor> cells;
  if (coarse_hnsw_) {
    // Keep the coarse graph's beam proportional to the probe budget even
    // when nprobe is overridden per query (Train sized it for the default).
    AnnSearchParams coarse_params;
    coarse_params.ef_search = std::max(16, nprobe * 2);
    cells = coarse_hnsw_->Search(query, static_cast<size_t>(nprobe),
                                 coarse_params);
  } else {
    cells.reserve(coarse_.k);
    for (int c = 0; c < coarse_.k; ++c) {
      cells.push_back(
          {SquaredL2Distance(query,
                             &coarse_.centroids[static_cast<size_t>(c) * d],
                             d),
           static_cast<u32>(c)});
    }
    std::sort(cells.begin(), cells.end());
    if (static_cast<int>(cells.size()) > nprobe) {
      cells.resize(static_cast<size_t>(nprobe));
    }
  }

  u64 adc_tables = 0;
  u64 codes_scanned = 0;
  TopK top(k);
  std::vector<float> lut(static_cast<size_t>(config_.m) * ks);
  std::vector<float> qres(d);
  for (const Neighbor& cell : cells) {
    const auto& ids = list_ids_[cell.id];
    if (ids.empty()) continue;
    ++adc_tables;
    codes_scanned += ids.size();
    // Query residual w.r.t. this cell, then the ADC lookup table.
    const float* c = &coarse_.centroids[static_cast<size_t>(cell.id) * d];
    for (int j = 0; j < d; ++j) qres[j] = query[j] - c[j];
    for (int s = 0; s < config_.m; ++s) {
      const float* rsub = &qres[static_cast<size_t>(s) * ds];
      const float* cb = &codebooks_[static_cast<size_t>(s) * ks * ds];
      for (int code = 0; code < ks; ++code) {
        lut[static_cast<size_t>(s) * ks + code] =
            SquaredL2Distance(rsub, cb + static_cast<size_t>(code) * ds, ds);
      }
    }
    const u8* codes = list_codes_[cell.id].data();
    for (size_t i = 0; i < ids.size(); ++i) {
      const u8* entry = codes + i * static_cast<size_t>(config_.m);
      float dist = 0.0f;
      for (int s = 0; s < config_.m; ++s) {
        dist += lut[static_cast<size_t>(s) * ks + entry[s]];
      }
      top.Push(-static_cast<double>(dist), ids[i]);
    }
  }
  if (metrics::Enabled() || trace::TraceCollector::Current() != nullptr) {
    static metrics::Counter* const searches =
        metrics::MetricsRegistry::Global().GetCounter(
            "dj_ivfpq_searches_total");
    static metrics::Counter* const probes =
        metrics::MetricsRegistry::Global().GetCounter(
            "dj_ivfpq_probes_total");
    static metrics::Counter* const tables =
        metrics::MetricsRegistry::Global().GetCounter(
            "dj_ivfpq_adc_tables_total");
    static metrics::Counter* const scanned =
        metrics::MetricsRegistry::Global().GetCounter(
            "dj_ivfpq_codes_scanned_total");
    searches->Increment();
    probes->Add(cells.size());
    tables->Add(adc_tables);
    scanned->Add(codes_scanned);
    trace::Count("ivfpq.probes", cells.size());
    trace::Count("ivfpq.adc_tables", adc_tables);
    trace::Count("ivfpq.codes_scanned", codes_scanned);
  }

  std::vector<Neighbor> out;
  for (const auto& s : top.Take()) {
    out.push_back(Neighbor{static_cast<float>(-s.score), s.id});
  }
  return out;
}

}  // namespace ann
}  // namespace deepjoin
