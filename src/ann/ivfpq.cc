#include "ann/ivfpq.h"

#include <algorithm>
#include <limits>
#include <string>

#include "util/crc32c.h"
#include "util/top_k.h"
#include "util/trace.h"

namespace deepjoin {
namespace ann {

namespace {

// Zero-copy map of one aligned section with the store loaders' validation
// policy: kFull checks the whole CRC now, otherwise pages validate lazily
// on first touch.
Status MapSection(BinaryReader& reader, const SectionInfo& info,
                  VerifyMode verify, std::shared_ptr<MappedRegion>* region,
                  std::unique_ptr<LazyValidator>* check, const u8** base) {
  DJ_RETURN_IF_ERROR(reader.env()->NewMappedRegion(
      reader.path(), info.offset, info.length, region));
  *base = static_cast<const u8*>((*region)->data());
  const bool eager = verify == VerifyMode::kFull;
  if (eager && info.length > 0 && Crc32c(*base, info.length) != info.crc) {
    return Status::DataLoss(reader.path() +
                            ": mapped section checksum mismatch");
  }
  *check = std::make_unique<LazyValidator>(*base, info, eager);
  return Status::OK();
}

}  // namespace

IvfPqIndex::IvfPqIndex(const IvfPqConfig& config) : config_(config) {
  DJ_CHECK(config_.dim > 0);
  DJ_CHECK_MSG(config_.dim % config_.m == 0, "dim must be divisible by m");
  DJ_CHECK(config_.nbits >= 1 && config_.nbits <= 8);
}

void IvfPqIndex::Train(const float* data, size_t n) {
  DJ_CHECK_MSG(!trained_, "Train() called twice");
  DJ_CHECK(n > 0);
  Rng rng(config_.seed);
  const int d = config_.dim;

  // Coarse quantizer.
  const int nlist = std::min<int>(config_.nlist, static_cast<int>(n));
  coarse_ = KMeans(data, n, d, nlist, config_.train_iters, rng);
  config_.nlist = nlist;
  list_ids_.resize(nlist);
  list_codes_.resize(nlist);

  if (config_.hnsw_coarse) {
    HnswConfig hc;
    hc.dim = d;
    hc.M = 8;
    hc.ef_construction = 80;
    hc.ef_search = std::max(16, config_.nprobe * 2);
    coarse_hnsw_ = std::make_unique<HnswIndex>(hc);
    for (int c = 0; c < nlist; ++c) {
      coarse_hnsw_->Add(&coarse_.centroids[static_cast<size_t>(c) * d]);
    }
  }

  // PQ codebooks over residuals of the training data.
  std::vector<float> residuals(n * static_cast<size_t>(d));
  for (size_t i = 0; i < n; ++i) {
    const float* v = data + i * d;
    const float* c =
        &coarse_.centroids[static_cast<size_t>(coarse_.assignments[i]) * d];
    for (int j = 0; j < d; ++j) residuals[i * d + j] = v[j] - c[j];
  }
  const int ds = dsub();
  const int ks = ksub();
  codebooks_.assign(static_cast<size_t>(config_.m) * ks * ds, 0.0f);
  std::vector<float> sub(n * static_cast<size_t>(ds));
  for (int s = 0; s < config_.m; ++s) {
    for (size_t i = 0; i < n; ++i) {
      std::copy(&residuals[i * d + static_cast<size_t>(s) * ds],
                &residuals[i * d + static_cast<size_t>(s) * ds + ds],
                &sub[i * ds]);
    }
    auto km = KMeans(sub.data(), n, ds, ks, config_.train_iters, rng);
    std::copy(km.centroids.begin(), km.centroids.end(),
              codebooks_.begin() + static_cast<size_t>(s) * ks * ds);
  }
  trained_ = true;
}

void IvfPqIndex::EncodeResidual(const float* r, u8* codes) const {
  const int ds = dsub();
  const int ks = ksub();
  for (int s = 0; s < config_.m; ++s) {
    const float* rsub = r + static_cast<size_t>(s) * ds;
    const float* cb = &codebooks_[static_cast<size_t>(s) * ks * ds];
    float best = std::numeric_limits<float>::max();
    int best_c = 0;
    for (int c = 0; c < ks; ++c) {
      const float dist =
          SquaredL2Distance(rsub, cb + static_cast<size_t>(c) * ds, ds);
      if (dist < best) {
        best = dist;
        best_c = c;
      }
    }
    codes[s] = static_cast<u8>(best_c);
  }
}

void IvfPqIndex::Add(const float* vec) {
  DJ_CHECK_MSG(!packed_, "ivfpq Add on a read-only (packed) index");
  DJ_CHECK_MSG(trained_, "Add() before Train()");
  const int d = config_.dim;
  const u32 cell = NearestCentroid(coarse_, vec);
  std::vector<float> residual(d);
  const float* c = &coarse_.centroids[static_cast<size_t>(cell) * d];
  for (int j = 0; j < d; ++j) residual[j] = vec[j] - c[j];
  std::vector<u8> codes(config_.m);
  EncodeResidual(residual.data(), codes.data());
  list_ids_[cell].push_back(static_cast<u32>(count_));
  list_codes_[cell].insert(list_codes_[cell].end(), codes.begin(),
                           codes.end());
  ++count_;
}

std::vector<Neighbor> IvfPqIndex::Search(const float* query, size_t k,
                                         const AnnSearchParams& params) const {
  DJ_TRACE_SPAN("ivfpq.search");
  DJ_CHECK_MSG(trained_, "Search() before Train()");
  if (count_ == 0 || k == 0) return {};
  const int d = config_.dim;
  const int ds = dsub();
  const int ks = ksub();
  const int nprobe = params.nprobe > 0 ? params.nprobe : config_.nprobe;

  // Rank coarse cells.
  std::vector<Neighbor> cells;
  if (coarse_hnsw_) {
    // Keep the coarse graph's beam proportional to the probe budget even
    // when nprobe is overridden per query (Train sized it for the default).
    AnnSearchParams coarse_params;
    coarse_params.ef_search = std::max(16, nprobe * 2);
    cells = coarse_hnsw_->Search(query, static_cast<size_t>(nprobe),
                                 coarse_params);
  } else {
    cells.reserve(coarse_.k);
    for (int c = 0; c < coarse_.k; ++c) {
      cells.push_back(
          {SquaredL2Distance(query,
                             &coarse_.centroids[static_cast<size_t>(c) * d],
                             d),
           static_cast<u32>(c)});
    }
    std::sort(cells.begin(), cells.end());
    if (static_cast<int>(cells.size()) > nprobe) {
      cells.resize(static_cast<size_t>(nprobe));
    }
  }

  u64 adc_tables = 0;
  u64 codes_scanned = 0;
  TopK top(k);
  std::vector<float> lut(static_cast<size_t>(config_.m) * ks);
  std::vector<float> qres(d);
  for (const Neighbor& cell : cells) {
    const ListView list = ListAt(cell.id);
    if (list.n == 0) continue;
    ++adc_tables;
    codes_scanned += list.n;
    // Query residual w.r.t. this cell, then the ADC lookup table.
    const float* c = &coarse_.centroids[static_cast<size_t>(cell.id) * d];
    for (int j = 0; j < d; ++j) qres[j] = query[j] - c[j];
    for (int s = 0; s < config_.m; ++s) {
      const float* rsub = &qres[static_cast<size_t>(s) * ds];
      const float* cb = &codebooks_[static_cast<size_t>(s) * ks * ds];
      for (int code = 0; code < ks; ++code) {
        lut[static_cast<size_t>(s) * ks + code] =
            SquaredL2Distance(rsub, cb + static_cast<size_t>(code) * ds, ds);
      }
    }
    for (u64 i = 0; i < list.n; ++i) {
      const u8* entry = list.codes + i * static_cast<size_t>(config_.m);
      float dist = 0.0f;
      for (int s = 0; s < config_.m; ++s) {
        dist += lut[static_cast<size_t>(s) * ks + entry[s]];
      }
      top.Push(-static_cast<double>(dist), list.ids[i]);
    }
  }
  if (metrics::Enabled() || trace::TraceCollector::Current() != nullptr) {
    static metrics::Counter* const searches =
        metrics::MetricsRegistry::Global().GetCounter(
            "dj_ivfpq_searches_total");
    static metrics::Counter* const probes =
        metrics::MetricsRegistry::Global().GetCounter(
            "dj_ivfpq_probes_total");
    static metrics::Counter* const tables =
        metrics::MetricsRegistry::Global().GetCounter(
            "dj_ivfpq_adc_tables_total");
    static metrics::Counter* const scanned =
        metrics::MetricsRegistry::Global().GetCounter(
            "dj_ivfpq_codes_scanned_total");
    searches->Increment();
    probes->Add(cells.size());
    tables->Add(adc_tables);
    scanned->Add(codes_scanned);
    trace::Count("ivfpq.probes", cells.size());
    trace::Count("ivfpq.adc_tables", adc_tables);
    trace::Count("ivfpq.codes_scanned", codes_scanned);
  }

  std::vector<Neighbor> out;
  for (const auto& s : top.Take()) {
    out.push_back(Neighbor{static_cast<float>(-s.score), s.id});
  }
  return out;
}

IvfPqIndex::ListView IvfPqIndex::ListAt(u32 cell) const {
  ListView out;
  if (!packed_) {
    const auto& ids = list_ids_[cell];
    out.ids = ids.data();
    out.codes = list_codes_[cell].data();
    out.n = ids.size();
    return out;
  }
  // Packed sections: clamp offsets to the stored total so a corrupt
  // prefix word can never read outside the sections (wrong results, never
  // UB), and lazily validate the pages the scan will touch.
  if (static_cast<size_t>(cell) + 1 >= offsets_.size()) return out;
  const u64 total = static_cast<u64>(count_);
  const u64 off = std::min<u64>(offsets_[cell], total);
  const u64 end = std::max(off, std::min<u64>(offsets_[cell + 1], total));
  const u64 m = static_cast<u64>(config_.m);
  out.ids = ids_base_ + off;
  out.codes = codes_base_ + off * m;
  out.n = end - off;
  if (ids_check_ != nullptr) ids_check_->Touch(off * sizeof(u32), out.n * sizeof(u32));
  if (codes_check_ != nullptr) codes_check_->Touch(off * m, out.n * m);
  return out;
}

bool IvfPqIndex::tainted() const {
  return (ids_check_ != nullptr && ids_check_->tainted()) ||
         (codes_check_ != nullptr && codes_check_->tainted());
}

// ---- Persistence (the payload behind index_io's DJIX header) ----
//
// ivfpq payload := dim:i32 nlist:i32 m:i32 nbits:i32 nprobe:i32
//                  train_iters:i32 seed:u64 hnsw_coarse:u32 count:u64
//                  centroids:f32[] codebooks:f32[] offsets:u32[nlist+1]
//                  ids_section codes_section
//
// The inverted lists are flattened in cell order into two page-aligned
// sections located by the prefix offsets; a mapped open touches none of
// them. The coarse HNSW is rebuilt from the centroids at load (nlist
// rows — negligible), so it has no on-disk representation.

Status IvfPqIndex::Save(BinaryWriter& writer,
                        const SaveOptions& options) const {
  if (options.storage != StorageKind::kAuto) {
    return Status::FailedPrecondition(
        "ivfpq stores PQ codes; SaveOptions.storage conversion does not "
        "apply (use kAuto)");
  }
  if (!trained_) {
    return Status::FailedPrecondition("ivfpq Save() before Train()");
  }
  writer.WriteI32(config_.dim);
  writer.WriteI32(config_.nlist);
  writer.WriteI32(config_.m);
  writer.WriteI32(config_.nbits);
  writer.WriteI32(config_.nprobe);
  writer.WriteI32(config_.train_iters);
  writer.WriteU64(config_.seed);
  writer.WriteU32(config_.hnsw_coarse ? 1 : 0);
  writer.WriteU64(static_cast<u64>(count_));
  writer.WriteFloatArray(coarse_.centroids.data(), coarse_.centroids.size());
  writer.WriteFloatArray(codebooks_.data(), codebooks_.size());
  const u64 m = static_cast<u64>(config_.m);
  if (packed_) {
    // Already flattened: validate the whole payload (a mapped page that
    // went bad must not be re-persisted silently), then write it out.
    if (ids_check_ != nullptr) {
      DJ_RETURN_IF_ERROR(ids_check_->VerifyAll());
    }
    if (codes_check_ != nullptr) {
      DJ_RETURN_IF_ERROR(codes_check_->VerifyAll());
    }
    writer.WriteU32Array(offsets_.data(), offsets_.size());
    writer.WriteAlignedSection(ids_base_, count_ * sizeof(u32));
    writer.WriteAlignedSection(codes_base_, count_ * m);
    return writer.status();
  }
  std::vector<u32> offsets(static_cast<size_t>(config_.nlist) + 1, 0);
  std::vector<u32> all_ids;
  std::vector<u8> all_codes;
  all_ids.reserve(count_);
  all_codes.reserve(count_ * m);
  for (int c = 0; c < config_.nlist; ++c) {
    offsets[static_cast<size_t>(c)] = static_cast<u32>(all_ids.size());
    all_ids.insert(all_ids.end(), list_ids_[static_cast<size_t>(c)].begin(),
                   list_ids_[static_cast<size_t>(c)].end());
    all_codes.insert(all_codes.end(),
                     list_codes_[static_cast<size_t>(c)].begin(),
                     list_codes_[static_cast<size_t>(c)].end());
  }
  offsets[static_cast<size_t>(config_.nlist)] =
      static_cast<u32>(all_ids.size());
  writer.WriteU32Array(offsets.data(), offsets.size());
  writer.WriteAlignedSection(all_ids.data(), all_ids.size() * sizeof(u32));
  writer.WriteAlignedSection(all_codes.data(), all_codes.size());
  return writer.status();
}

Result<std::unique_ptr<IvfPqIndex>> IvfPqIndex::LoadPayload(
    BinaryReader& reader, const OpenOptions& options) {
  if (options.storage != StorageKind::kAuto) {
    return Status::FailedPrecondition(
        "ivfpq holds PQ codes; OpenOptions.storage does not apply (use "
        "kAuto)");
  }
  IvfPqConfig config;
  DJ_RETURN_IF_ERROR(reader.ReadI32(&config.dim));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&config.nlist));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&config.m));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&config.nbits));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&config.nprobe));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&config.train_iters));
  DJ_RETURN_IF_ERROR(reader.ReadU64(&config.seed));
  u32 hnsw_coarse = 0;
  u64 count = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU32(&hnsw_coarse));
  DJ_RETURN_IF_ERROR(reader.ReadU64(&count));
  // The constructor DJ_CHECKs these invariants; a load path must reject,
  // not abort.
  if (config.dim <= 0 || config.dim > (1 << 20) || config.m < 1 ||
      config.dim % config.m != 0 || config.nbits < 1 || config.nbits > 8 ||
      config.nlist < 1 || config.nlist > (1 << 24) || config.nprobe < 1 ||
      config.train_iters < 0 || hnsw_coarse > 1 ||
      count > std::numeric_limits<u32>::max()) {
    return Status::DataLoss("ivfpq config out of range");
  }
  config.hnsw_coarse = hnsw_coarse != 0;
  auto index = std::make_unique<IvfPqIndex>(config);
  DJ_RETURN_IF_ERROR(reader.ReadFloatArray(&index->coarse_.centroids));
  DJ_RETURN_IF_ERROR(reader.ReadFloatArray(&index->codebooks_));
  const u64 d = static_cast<u64>(config.dim);
  if (index->coarse_.centroids.size() != static_cast<u64>(config.nlist) * d) {
    return Status::DataLoss("ivfpq centroid payload does not match nlist");
  }
  const int ds = config.dim / config.m;
  const int ks = 1 << config.nbits;
  if (index->codebooks_.size() !=
      static_cast<u64>(config.m) * static_cast<u64>(ks) * ds) {
    return Status::DataLoss("ivfpq codebook payload does not match config");
  }
  index->coarse_.k = config.nlist;
  index->coarse_.dim = config.dim;
  std::vector<u32> offsets;
  DJ_RETURN_IF_ERROR(reader.ReadU32Array(&offsets));
  if (offsets.size() != static_cast<size_t>(config.nlist) + 1 ||
      offsets.front() != 0 || offsets.back() != count) {
    return Status::DataLoss("ivfpq offsets do not match the list count");
  }
  for (size_t c = 0; c + 1 < offsets.size(); ++c) {
    if (offsets[c] > offsets[c + 1]) {
      return Status::DataLoss("ivfpq offsets are not monotonic");
    }
  }
  SectionInfo ids_info, codes_info;
  DJ_RETURN_IF_ERROR(reader.ReadSection(&ids_info));
  if (ids_info.length != count * sizeof(u32)) {
    return Status::DataLoss("ivfpq ids section length mismatch");
  }
  DJ_RETURN_IF_ERROR(reader.ReadSection(&codes_info));
  if (codes_info.length != count * static_cast<u64>(config.m)) {
    return Status::DataLoss("ivfpq codes section length mismatch");
  }
  index->trained_ = true;
  index->count_ = static_cast<size_t>(count);
  if (config.hnsw_coarse) {
    HnswConfig hc;
    hc.dim = config.dim;
    hc.M = 8;
    hc.ef_construction = 80;
    hc.ef_search = std::max(16, config.nprobe * 2);
    index->coarse_hnsw_ = std::make_unique<HnswIndex>(hc);
    for (int c = 0; c < config.nlist; ++c) {
      index->coarse_hnsw_->Add(
          &index->coarse_.centroids[static_cast<size_t>(c) * d]);
    }
  }
  if (options.map == MapMode::kOwned) {
    // Owned open: decode the flattened lists back into the live per-cell
    // vectors — the index stays mutable (legacy semantics).
    std::string ids_bytes, codes_bytes;
    DJ_RETURN_IF_ERROR(reader.ReadSectionBytes(ids_info, &ids_bytes));
    DJ_RETURN_IF_ERROR(reader.ReadSectionBytes(codes_info, &codes_bytes));
    const u32* ids = reinterpret_cast<const u32*>(ids_bytes.data());
    const u8* codes = reinterpret_cast<const u8*>(codes_bytes.data());
    const u64 m = static_cast<u64>(config.m);
    index->list_ids_.resize(static_cast<size_t>(config.nlist));
    index->list_codes_.resize(static_cast<size_t>(config.nlist));
    for (int c = 0; c < config.nlist; ++c) {
      const u64 off = offsets[static_cast<size_t>(c)];
      const u64 end = offsets[static_cast<size_t>(c) + 1];
      index->list_ids_[static_cast<size_t>(c)].assign(ids + off, ids + end);
      index->list_codes_[static_cast<size_t>(c)].assign(codes + off * m,
                                                        codes + end * m);
    }
    return index;
  }
  index->packed_ = true;
  index->offsets_ = std::move(offsets);
  const u8* ids_base = nullptr;
  const u8* codes_base = nullptr;
  DJ_RETURN_IF_ERROR(MapSection(reader, ids_info, options.verify,
                                &index->ids_region_, &index->ids_check_,
                                &ids_base));
  DJ_RETURN_IF_ERROR(MapSection(reader, codes_info, options.verify,
                                &index->codes_region_, &index->codes_check_,
                                &codes_base));
  index->ids_base_ = reinterpret_cast<const u32*>(ids_base);
  index->codes_base_ = codes_base;
  return index;
}

}  // namespace ann
}  // namespace deepjoin
