// Hierarchical Navigable Small World graphs (Malkov & Yashunin, 2020) —
// the ANNS algorithm DeepJoin uses for sub-linear search (paper §3.3).
// Implements the standard construction with the neighbour-selection
// heuristic, per-level degree caps (M on upper levels, 2M on level 0), and
// ef-bounded best-first layer search.
#ifndef DEEPJOIN_ANN_HNSW_H_
#define DEEPJOIN_ANN_HNSW_H_

#include <memory>
#include <vector>

#include "ann/vector_index.h"
#include "util/alloc_guard.h"
#include "util/binary_io.h"
#include "util/mutex.h"
#include "util/rng.h"

namespace deepjoin {
namespace ann {

struct HnswConfig {
  int dim = 0;
  int M = 16;                ///< max out-degree on upper levels
  int ef_construction = 200;
  int ef_search = 64;
  u64 seed = 11;
};

class HnswIndex : public VectorIndex {
 public:
  explicit HnswIndex(const HnswConfig& config);

  using VectorIndex::Search;

  void Add(const float* vec) override;

  /// Thread-safe against concurrent Search calls on the same index (each
  /// query checks out its own visited-marker scratch from a pool). Add is
  /// NOT safe to run concurrently with Search; build first, then serve.
  /// The recall/latency knob travels per call: params.ef_search > 0
  /// overrides config.ef_search for this query only, so concurrent
  /// searches with different ef never race on shared state.
  std::vector<Neighbor> Search(const float* query, size_t k,
                               const AnnSearchParams& params) const override;

  /// Allocation-free query path: the whole traversal runs on pooled
  /// scratch (visited stamps + the two layer-search heaps) and writes into
  /// the caller's capacity-reusing buffer. Search forwards here. The
  /// DJ_NOALLOC contract covers the steady state — scratch pool warmed up,
  /// no per-query TraceCollector installed — and is enforced by
  /// tools/dj_alloc plus the guard-enabled searcher test.
  DJ_NOALLOC void SearchInto(const float* query, size_t k,
                             const AnnSearchParams& params,
                             std::vector<Neighbor>* out) const override;
  size_t size() const override { return levels_.size(); }
  int dim() const override { return config_.dim; }
  const char* name() const override { return "hnsw"; }

  int ef_search_default() const { return config_.ef_search; }
  int max_level() const { return max_level_; }

  /// Persists the full graph + vectors. The offline index build of §3.3
  /// is the expensive step; serving processes load instead of rebuilding.
  /// Errors stick to the writer; Load never aborts — wrong magic, wrong
  /// version, truncation, or any inconsistency in the decoded graph
  /// (dangling ids, bad entry point, level mismatches) returns DataLoss.
  void Save(BinaryWriter& writer) const;
  static Result<HnswIndex> Load(BinaryReader& reader);

 private:
  const float* VectorAt(u32 id) const {
    return &data_[static_cast<size_t>(id) * config_.dim];
  }
  float Dist(const float* q, u32 id) const {
    return SquaredL2Distance(q, VectorAt(id), config_.dim);
  }

  /// Per-query work tally for observability; the build path passes
  /// nullptr so Add cost never pollutes search metrics.
  struct SearchWork {
    u64 dist_evals = 0;
    u64 hops = 0;
  };

  /// Greedy single-entry descent within one level.
  DJ_NOALLOC u32 GreedyClosest(const float* query, u32 entry, int level,
                               SearchWork* work = nullptr) const;

  /// Best-first search within a level; writes up to `ef` nearest into
  /// `*out` (cleared first), ascending by distance. Runs entirely on the
  /// pooled scratch's heap vectors — no per-call containers.
  DJ_NOALLOC void SearchLayer(const float* query, u32 entry, int ef,
                              int level, std::vector<Neighbor>* out,
                              SearchWork* work = nullptr) const;

  /// Malkov's heuristic: keep candidates that are closer to the query than
  /// to any already-kept neighbour (diversifies link directions).
  std::vector<u32> SelectNeighbors(const float* query,
                                   const std::vector<Neighbor>& candidates,
                                   int m) const;

  std::vector<u32>& LinksAt(u32 id, int level) {
    return links_[id][static_cast<size_t>(level)];
  }
  const std::vector<u32>& LinksAt(u32 id, int level) const {
    return links_[id][static_cast<size_t>(level)];
  }

  // Epoch-stamped visited markers, pooled so concurrent Search calls never
  // share one (the former single mutable buffer was a data race under
  // parallel queries). Acquire/Release touch only the pool mutex; the
  // buffer itself is owned by exactly one query at a time.
  struct VisitedScratch {
    std::vector<u32> stamp;
    u32 epoch = 0;
    // SearchLayer's two heaps, kept as push_heap/pop_heap vectors in the
    // pooled scratch so the steady state reuses their capacity instead of
    // constructing two priority_queues per call.
    std::vector<Neighbor> candidates;  // nearest-first frontier (min-heap)
    std::vector<Neighbor> results;     // farthest-first best-ef (max-heap)
  };
  class VisitedPool {
   public:
    std::unique_ptr<VisitedScratch> Acquire(size_t n) const DJ_EXCLUDES(mu_);
    void Release(std::unique_ptr<VisitedScratch> scratch) const
        DJ_EXCLUDES(mu_);

   private:
    mutable Mutex mu_{"hnsw.visited_pool", rank::kVisited};
    mutable std::vector<std::unique_ptr<VisitedScratch>> free_
        DJ_GUARDED_BY(mu_);
  };

  HnswConfig config_;
  double level_mult_;
  Rng rng_;
  std::vector<float> data_;               // n x dim
  std::vector<int> levels_;               // top level of each node
  std::vector<std::vector<std::vector<u32>>> links_;  // [node][level] -> ids
  u32 entry_ = 0;
  int max_level_ = -1;

  // Held by pointer so HnswIndex stays movable (the pool owns a mutex);
  // a moved-from index must not be searched.
  std::unique_ptr<VisitedPool> visited_pool_;
};

}  // namespace ann
}  // namespace deepjoin

#endif  // DEEPJOIN_ANN_HNSW_H_
