// Hierarchical Navigable Small World graphs (Malkov & Yashunin, 2020) —
// the ANNS algorithm DeepJoin uses for sub-linear search (paper §3.3).
// Implements the standard construction with the neighbour-selection
// heuristic, per-level degree caps (M on upper levels, 2M on level 0), and
// ef-bounded best-first layer search.
//
// Live-mutability additions (DESIGN.md §12): the index is a concurrent
// data structure. `Insert`/`Remove` run alongside `SearchInto` —
// hnswlib-style striped per-node link locks guard the adjacency lists,
// node storage is chunked (pointers pre-reserved) so published vectors
// never move, and an atomic count/entry-point pair publishes each new
// node only after its storage is fully written. Deletes are tombstones:
// the node keeps routing traffic, but a filtered layer-0 search drops it
// from results; `CompactedCopy` rebuilds a dead-heavy graph off to the
// side.
//
// Dual storage modes (DESIGN.md §14): an index is either *live* (the
// mutable chunked-node structure above) or *store-backed read-only* —
// opened from a DJIX file with a packed flat graph and a VectorStore for
// the rows (float or SQ8, owned or mapped). OpenIndex materialises the
// live mode for {kOwned, kFloat} opens (legacy add-after-load semantics);
// every other combination gets the read-only mode, where Insert/Add fail
// (FailedPrecondition / DJ_CHECK) but Remove still tombstones. Packed
// graph reads are clamped everywhere (counts to the degree caps, walks to
// the section bounds, neighbour ids to the pinned count), so a corrupted
// mapped graph yields wrong-but-defined results, never UB.
#ifndef DEEPJOIN_ANN_HNSW_H_
#define DEEPJOIN_ANN_HNSW_H_

#include <atomic>
#include <memory>
#include <vector>

#include "ann/vector_index.h"
#include "util/alloc_guard.h"
#include "util/binary_io.h"
#include "util/mutex.h"
#include "util/rng.h"

namespace deepjoin {
namespace ann {

struct HnswConfig {
  int dim = 0;
  int M = 16;                ///< max out-degree on upper levels
  int ef_construction = 200;
  int ef_search = 64;
  u64 seed = 11;
  /// Capacity ceiling for live inserts. Chunk pointers are reserved up
  /// front so node storage never reallocates under concurrent readers;
  /// Insert past this returns FailedPrecondition (compact or rebuild
  /// bigger). The constructor rounds it up to at least one chunk.
  u32 max_elements = 1u << 20;
};

class HnswIndex : public VectorIndex {
 public:
  explicit HnswIndex(const HnswConfig& config);

  // Movable (Load/CompactedCopy return by value) but, like the previous
  // revision, a moved-from index must not be used. Moves are
  // single-threaded by contract: nobody may hold references into the
  // source across the move.
  HnswIndex(HnswIndex&& other) noexcept;
  HnswIndex& operator=(HnswIndex&& other) noexcept;
  HnswIndex(const HnswIndex&) = delete;
  HnswIndex& operator=(const HnswIndex&) = delete;

  using VectorIndex::Search;

  /// Legacy bulk-build entry point: draws the level and inserts, aborting
  /// on capacity exhaustion (callers size max_elements to the build).
  /// Serial adds produce the same graph the pre-mutability code built.
  void Add(const float* vec) override;

  /// Concurrent-safe insert: draws the node's level, wires it into the
  /// graph, and reports the assigned id / drawn level. Inserts serialize
  /// with each other on an update lock but run alongside SearchInto.
  /// Fails (FailedPrecondition) when max_elements is reached.
  [[nodiscard]] Status Insert(const float* vec, u32* id = nullptr,
                              i32* level = nullptr);

  /// Insert with a caller-provided level instead of an RNG draw — the WAL
  /// replay path (core/searcher) records each insert's drawn level so a
  /// recovered graph is bit-identical to the pre-crash one.
  [[nodiscard]] Status InsertWithLevel(const float* vec, i32 level,
                                       u32* id = nullptr);

  /// Consumes one level draw from the construction RNG without inserting.
  /// The live searcher draws first, logs {level, vector} to its WAL, then
  /// calls InsertWithLevel, so the durable record always matches memory.
  i32 DrawLevel();

  /// Tombstones `id`: it stops appearing in results immediately (filtered
  /// layer-0 collection) but keeps routing traffic until a compaction
  /// rebuilds the graph. Idempotent; NotFound for ids never inserted.
  [[nodiscard]] Status Remove(u32 id) override;
  bool IsDeleted(u32 id) const override;
  size_t deleted_count() const override {
    return dead_.load(std::memory_order_relaxed);
  }

  /// Rebuilds a graph containing only live nodes (off to the side; `this`
  /// keeps serving searches during the copy). `new_to_old[new_id]` maps
  /// each compacted id back to its id in this index. Must not run
  /// concurrently with Insert/Remove on `this` (the caller holds its own
  /// writer lock); concurrent searches are fine — only immutable vectors
  /// and atomic tombstone flags are read.
  HnswIndex CompactedCopy(std::vector<u32>* new_to_old) const;

  /// Thread-safe against concurrent Search and Insert/Remove calls on the
  /// same index (each query checks out its own visited-marker scratch from
  /// a pool and pins the published node count; mutators publish nodes with
  /// release stores and guard adjacency with striped link locks).
  /// The recall/latency knob travels per call: params.ef_search > 0
  /// overrides config.ef_search for this query only, so concurrent
  /// searches with different ef never race on shared state.
  std::vector<Neighbor> Search(const float* query, size_t k,
                               const AnnSearchParams& params) const override;

  /// Allocation-free query path: the whole traversal runs on pooled
  /// scratch (visited stamps + the two layer-search heaps + the link
  /// snapshot buffer) and writes into the caller's capacity-reusing
  /// buffer. Search forwards here. The DJ_NOALLOC contract covers the
  /// steady state — scratch pool warmed up, no per-query TraceCollector
  /// installed — and is enforced by tools/dj_alloc plus the guard-enabled
  /// searcher test.
  DJ_NOALLOC void SearchInto(const float* query, size_t k,
                             const AnnSearchParams& params,
                             std::vector<Neighbor>* out) const override;
  size_t size() const override {
    return count_.load(std::memory_order_acquire);
  }
  int dim() const override { return config_.dim; }
  const char* name() const override { return "hnsw"; }

  int ef_search_default() const { return config_.ef_search; }
  int max_level() const {
    const u64 ep = entry_point_.load(std::memory_order_acquire);
    return static_cast<int>(ep >> 32) - 1;
  }
  u32 capacity() const { return config_.max_elements; }

  /// Persists graph + rows as a DJIX payload (the offline index build of
  /// §3.3 is the expensive step; serving processes load instead of
  /// rebuilding). options.storage converts the row representation
  /// (float -> SQ8 trains quantization; SQ8 -> float needs a float
  /// refinement store); the graph is written as one page-aligned section
  /// so a later open can map it zero-copy. Concurrent searches are safe
  /// during a live-mode save (links are snapshotted under their stripe
  /// locks); concurrent mutation is not — the caller serializes on its
  /// writer lock.
  [[nodiscard]] Status Save(BinaryWriter& writer,
                            const SaveOptions& options) const override;

  /// Loads the payload Save wrote, after index_io consumed the DJIX
  /// magic/version/kind header. Never aborts: truncation or any
  /// inconsistency in the decoded graph returns DataLoss.
  static Result<std::unique_ptr<HnswIndex>> LoadPayload(
      BinaryReader& reader, const OpenOptions& options);

  /// Emits the pre-DJIX standalone format ("HNSW" magic, v2). Retained so
  /// tests can generate backward-compat fixtures; new code saves through
  /// the virtual Save. OpenIndex still reads files in this format.
  void SaveLegacy(BinaryWriter& writer) const;

  /// Decodes the legacy format after its magic word was consumed (the
  /// index_io fallback path). Produces a live (mutable, owned-float)
  /// index — the only mode the legacy format supports.
  static Result<HnswIndex> LoadLegacyAfterMagic(BinaryReader& reader);

  /// True for a store-backed index opened read-only (mapped and/or SQ8):
  /// Insert/Add are unavailable; Remove still works.
  bool read_only() const { return store_ != nullptr; }
  /// The row store behind a read-only index (nullptr in live mode).
  const VectorStore* store() const { return store_.get(); }
  /// True once any lazily-validated mapped page failed its CRC.
  bool tainted() const;

 private:
  // Chunked node storage: fixed-size chunks whose outer pointer arrays are
  // reserved at construction, so a published vector/Node never moves and
  // readers index without locks. 256 nodes per chunk keeps the pointer
  // overhead at max_elements/256 * 16 bytes.
  static constexpr u32 kChunkShift = 8;
  static constexpr u32 kChunkSize = 1u << kChunkShift;
  static constexpr u32 kChunkMask = kChunkSize - 1;

  struct Node {
    i32 level = 0;
    std::atomic<bool> deleted{false};
    /// links[lev] for lev in [0, level]. Guarded by the id's link stripe.
    std::vector<std::vector<u32>> links;
  };

  // Striped per-node link locks (hnswlib's label_op locks, coarsened):
  // every read or write of Node::links happens under the owning node's
  // stripe. At most one stripe is held at a time (insert wires forward and
  // back links one node apiece), so equal ranks never nest.
  static constexpr u32 kNumStripes = 64;
  struct LinkStripe {
    Mutex link_mu{"hnsw.links", rank::kHnswLinks};
  };
  struct Sync {
    /// Serializes mutators (Insert/Remove) against each other; never
    /// blocks searches.
    Mutex update_mu{"hnsw.update", rank::kHnswUpdate};
    LinkStripe stripes[kNumStripes];
  };
  static u32 StripeOf(u32 id) { return id & (kNumStripes - 1); }

  const float* VectorAt(u32 id) const {
    return data_chunks_[id >> kChunkShift].get() +
           static_cast<size_t>(id & kChunkMask) * config_.dim;
  }
  Node& NodeAt(u32 id) const {
    return node_chunks_[id >> kChunkShift].get()[id & kChunkMask];
  }
  float Dist(const float* q, u32 id) const {
    return store_ != nullptr
               ? store_->Distance(q, id)
               : SquaredL2Distance(q, VectorAt(id), config_.dim);
  }
  bool DeletedAt(u32 id) const {
    return store_ != nullptr
               ? ro_deleted_[id].load(std::memory_order_acquire) != 0
               : NodeAt(id).deleted.load(std::memory_order_acquire);
  }
  /// Node's top level: live Node metadata, or the packed levels word
  /// (clamped — a corrupt mapped word must not drive a huge walk).
  i32 NodeLevelOf(u32 id) const;

  // Entry point published as one atomic word: ((level + 1) << 32) | id,
  // 0 = empty index. Readers load it BEFORE the count, so the pinned
  // count is always past the entry node (the writer stores count first).
  static u64 PackEntry(i32 level, u32 id) {
    return (static_cast<u64>(static_cast<u32>(level + 1)) << 32) | id;
  }

  /// Per-query work tally for observability; the build path passes
  /// nullptr so Add cost never pollutes search metrics.
  struct SearchWork {
    u64 dist_evals = 0;
    u64 hops = 0;
  };

  // Epoch-stamped visited markers, pooled so concurrent Search calls never
  // share one (the former single mutable buffer was a data race under
  // parallel queries). Acquire/Release touch only the pool mutex; the
  // buffer itself is owned by exactly one query at a time.
  struct VisitedScratch {
    std::vector<u32> stamp;
    u32 epoch = 0;
    /// Published node count pinned when the scratch was acquired: ids at
    /// or past it were published after this query started and are skipped
    /// (their stamp slots may not exist yet).
    u32 bound = 0;
    // SearchLayer's two heaps, kept as push_heap/pop_heap vectors in the
    // pooled scratch so the steady state reuses their capacity instead of
    // constructing two priority_queues per call.
    std::vector<Neighbor> candidates;  // nearest-first frontier (min-heap)
    std::vector<Neighbor> results;     // farthest-first best-ef (max-heap)
    /// Snapshot of one node's adjacency, copied under its stripe lock so
    /// the traversal never reads a list a concurrent insert is growing.
    std::vector<u32> link_buf;
  };
  class VisitedPool {
   public:
    std::unique_ptr<VisitedScratch> Acquire(size_t n) const DJ_EXCLUDES(mu_);
    void Release(std::unique_ptr<VisitedScratch> scratch) const
        DJ_EXCLUDES(mu_);

   private:
    mutable Mutex mu_{"hnsw.visited_pool", rank::kVisited};
    mutable std::vector<std::unique_ptr<VisitedScratch>> free_
        DJ_GUARDED_BY(mu_);
  };

  /// Copies `id`'s level-`lev` adjacency into `*out` under the stripe
  /// lock (capacity-reusing buffer).
  DJ_NOALLOC void CopyLinks(u32 id, int level, std::vector<u32>* out) const;

  /// Greedy single-entry descent within one level. `scratch` supplies the
  /// link snapshot buffer and the pinned bound.
  DJ_NOALLOC u32 GreedyClosest(const float* query, u32 entry, int level,
                               VisitedScratch* scratch,
                               SearchWork* work = nullptr) const;

  /// Best-first search within a level; writes up to `ef` nearest into
  /// `*out` (cleared first), ascending by distance. Runs entirely on the
  /// caller-acquired scratch — no per-call containers. With
  /// `filter_deleted`, tombstoned nodes still route (they stay in the
  /// frontier) but never land in `*out`.
  DJ_NOALLOC void SearchLayer(const float* query, u32 entry, int ef,
                              int level, std::vector<Neighbor>* out,
                              VisitedScratch* scratch, bool filter_deleted,
                              SearchWork* work = nullptr) const;

  /// Malkov's heuristic: keep candidates that are closer to the query than
  /// to any already-kept neighbour (diversifies link directions).
  std::vector<u32> SelectNeighbors(const float* query,
                                   const std::vector<Neighbor>& candidates,
                                   int m) const;

  i32 DrawLevelLocked() DJ_REQUIRES(sync_->update_mu);
  Status InsertWithLevelLocked(const float* vec, i32 level, u32* id_out)
      DJ_REQUIRES(sync_->update_mu);

  /// Serializes the graph into the packed flat layout (levels | level0 |
  /// upper_off | upper, all u32) from either mode; live-mode lists are
  /// snapshotted under their stripe locks and clamped to the degree caps.
  void PackGraph(std::vector<u32>* words, u64* upper_len) const;

  /// Rebinds g_* into a packed graph buffer (called at load and after
  /// moves — a small owned buffer may live in the string's SSO storage,
  /// which moves).
  void SetGraphPointers(const void* base, u64 n, u64 upper_len);
  /// Lazy-validates the graph pages backing `nwords` words at `p`.
  void TouchGraph(const u32* p, u64 nwords) const;

  /// Builds a live (mutable) index from decoded rows + packed graph — the
  /// {kOwned, kFloat} open path and the legacy loader's shared tail.
  static Result<HnswIndex> BuildLive(HnswConfig config, const float* rows,
                                     u64 n, const std::vector<i32>& levels,
                                     const std::vector<u32>& list_sizes,
                                     const std::vector<u32>& all_ids,
                                     u32 entry, i32 max_level,
                                     const std::vector<u32>& deleted_ids);

  HnswConfig config_;
  double level_mult_;
  Rng rng_;  // level draws; guarded by sync_->update_mu after construction

  // Chunk pointer arrays are reserve()'d to capacity in the constructor
  // and only ever push_back'd under update_mu: the data()/element storage
  // readers index through is stable for the index's lifetime.
  std::vector<std::unique_ptr<float[]>> data_chunks_;
  std::vector<std::unique_ptr<Node[]>> node_chunks_;

  /// Number of fully-published nodes. Stored with release after a node's
  /// vector + Node metadata are written; loaded with acquire by readers.
  std::atomic<u32> count_{0};
  /// Tombstone count (live size = count_ - dead_).
  std::atomic<u32> dead_{0};
  /// Packed entry point (see PackEntry); updated after the node is wired.
  std::atomic<u64> entry_point_{0};

  // ---- Read-only store-backed mode (null/empty in live mode) ----
  // Rows live in a VectorStore; the graph is the packed flat layout
  //   levels[n] | level0[n*(1+2M)] | upper_off[n+1] | upper[upper_len]
  // (all u32) backed by either an owned buffer or a mapped region. The
  // shared_ptr keeps the mapping alive for as long as any snapshot chain
  // (searcher snapshot -> index -> region) pins this index — RCU readers
  // never observe an unmapped page.
  std::unique_ptr<VectorStore> store_;
  std::unique_ptr<VectorStore> refine_;  // exact floats for reranking
  std::shared_ptr<MappedRegion> graph_region_;
  std::string graph_owned_;
  std::unique_ptr<LazyValidator> graph_check_;
  const u32* g_levels_ = nullptr;
  const u32* g_level0_ = nullptr;
  const u32* g_upper_off_ = nullptr;
  const u32* g_upper_ = nullptr;
  u64 g_upper_len_ = 0;
  /// Tombstones for the read-only mode (Remove works, Insert does not).
  std::unique_ptr<std::atomic<u8>[]> ro_deleted_;

  // Held by pointer so HnswIndex stays movable (mutexes are not);
  // a moved-from index must not be used.
  std::unique_ptr<Sync> sync_;
  std::unique_ptr<VisitedPool> visited_pool_;
};

}  // namespace ann
}  // namespace deepjoin

#endif  // DEEPJOIN_ANN_HNSW_H_
