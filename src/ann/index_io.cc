#include "ann/index_io.h"

#include <string>
#include <utility>

#include "ann/hnsw.h"
#include "ann/ivfpq.h"

namespace deepjoin {
namespace ann {

namespace {

// The legacy standalone HNSW format's magic word, mirrored from hnsw.cc
// (the constant there is file-local by design — this is the only other
// reader).
constexpr u32 kLegacyHnswMagic = 0x484E5357;  // "HNSW"

}  // namespace

Result<std::unique_ptr<VectorIndex>> LoadIndexPayload(
    BinaryReader& reader, const OpenOptions& options) {
  u32 magic = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU32(&magic));
  if (magic == kLegacyHnswMagic) {
    // Legacy standalone HNSW: always decodes into a live owned-float
    // index, so non-default open knobs would be silently ignored — reject
    // them instead.
    if (options.storage != StorageKind::kAuto &&
        options.storage != StorageKind::kFloat) {
      return Status::FailedPrecondition(
          "legacy HNSW file holds float rows only; re-save through the "
          "DJIX format for SQ8");
    }
    if (options.map != MapMode::kOwned) {
      return Status::FailedPrecondition(
          "legacy HNSW file predates aligned sections and cannot be "
          "mapped; re-save through the DJIX format");
    }
    auto legacy = HnswIndex::LoadLegacyAfterMagic(reader);
    if (!legacy.ok()) return legacy.status();
    return std::unique_ptr<VectorIndex>(
        std::make_unique<HnswIndex>(std::move(legacy).value()));
  }
  if (magic != kDjIndexMagic) {
    return Status::DataLoss("not an index file (bad magic)");
  }
  u32 version = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != kDjIndexVersion) {
    return Status::DataLoss("unsupported index format version " +
                            std::to_string(version));
  }
  std::string kind;
  DJ_RETURN_IF_ERROR(reader.ReadString(&kind));
  if (kind == "flat") {
    auto r = FlatIndex::LoadPayload(reader, options);
    if (!r.ok()) return r.status();
    return std::unique_ptr<VectorIndex>(std::move(r).value());
  }
  if (kind == "hnsw") {
    auto r = HnswIndex::LoadPayload(reader, options);
    if (!r.ok()) return r.status();
    return std::unique_ptr<VectorIndex>(std::move(r).value());
  }
  if (kind == "ivfpq" || kind == "ivfpq+hnsw") {
    auto r = IvfPqIndex::LoadPayload(reader, options);
    if (!r.ok()) return r.status();
    return std::unique_ptr<VectorIndex>(std::move(r).value());
  }
  return Status::DataLoss("unknown index kind '" + kind + "'");
}

Result<std::unique_ptr<VectorIndex>> OpenIndex(const std::string& path,
                                               const OpenOptions& options,
                                               Env* env) {
  BinaryReader reader(path, env);
  DJ_RETURN_IF_ERROR(reader.Open());
  return LoadIndexPayload(reader, options);
}

Status SaveIndexPayload(const VectorIndex& index, BinaryWriter& writer,
                        const SaveOptions& options) {
  writer.WriteU32(kDjIndexMagic);
  writer.WriteU32(kDjIndexVersion);
  writer.WriteString(index.name());
  return index.Save(writer, options);
}

Status SaveIndexFile(const VectorIndex& index, const std::string& path,
                     const SaveOptions& options, Env* env) {
  return AtomicSave(path, env, [&](BinaryWriter& writer) {
    return SaveIndexPayload(index, writer, options);
  });
}

}  // namespace ann
}  // namespace deepjoin
