// Inverted file with product quantization (Jégou et al., 2011) — the
// billion-scale option of paper §3.3 ("construct HNSW over the coarse
// quantizer of IVFPQ", as Faiss does). A k-means coarse quantizer routes
// vectors to inverted lists; residuals are PQ-encoded; queries scan the
// `nprobe` nearest lists with asymmetric distance computation (ADC) using
// per-subspace lookup tables.
#ifndef DEEPJOIN_ANN_IVFPQ_H_
#define DEEPJOIN_ANN_IVFPQ_H_

#include <memory>
#include <vector>

#include "ann/hnsw.h"
#include "ann/kmeans.h"
#include "ann/vector_index.h"

namespace deepjoin {
namespace ann {

struct IvfPqConfig {
  int dim = 0;
  int nlist = 64;       ///< number of coarse cells
  int m = 8;            ///< PQ subspaces (dim % m == 0)
  int nbits = 6;        ///< bits per code (ksub = 1 << nbits, <= 8)
  int nprobe = 8;       ///< coarse cells scanned per query
  int train_iters = 15;
  u64 seed = 17;
  /// When true, the coarse quantizer is searched through a small HNSW
  /// graph instead of a linear scan — the Faiss-style composition the
  /// paper references for billion-scale data.
  bool hnsw_coarse = false;
};

class IvfPqIndex : public VectorIndex {
 public:
  explicit IvfPqIndex(const IvfPqConfig& config);

  /// Trains the coarse quantizer and PQ codebooks. Must precede Add().
  void Train(const float* data, size_t n);
  bool trained() const { return trained_; }

  using VectorIndex::Search;

  void Add(const float* vec) override;
  /// params.nprobe > 0 overrides config.nprobe for this query only (the
  /// old set_nprobe mutator raced with concurrent searches and is gone).
  std::vector<Neighbor> Search(const float* query, size_t k,
                               const AnnSearchParams& params) const override;
  size_t size() const override { return count_; }
  int dim() const override { return config_.dim; }
  const char* name() const override {
    return config_.hnsw_coarse ? "ivfpq+hnsw" : "ivfpq";
  }

  int nprobe_default() const { return config_.nprobe; }

  /// DJIX payload: config + centroids + codebooks, then the inverted
  /// lists flattened into two page-aligned sections (ids, codes) indexed
  /// by per-cell prefix offsets. options.storage must be kAuto — PQ codes
  /// are already a quantized representation of their own.
  [[nodiscard]] Status Save(BinaryWriter& writer,
                            const SaveOptions& options) const override;

  /// Loads the payload Save wrote. MapMode::kOwned decodes the sections
  /// back into live per-cell lists (mutable, legacy semantics);
  /// MapMode::kMapped keeps them packed and zero-copy — the index is then
  /// read-only (Add aborts) and every list access is bounds-clamped, so
  /// corrupt mapped words yield wrong-but-defined results, never UB. The
  /// coarse HNSW (when configured) is rebuilt from the centroids: it is
  /// nlist-sized, negligible next to the lists.
  static Result<std::unique_ptr<IvfPqIndex>> LoadPayload(
      BinaryReader& reader, const OpenOptions& options);

  /// True for a mapped (packed) open: Add is unavailable.
  bool read_only() const { return packed_; }
  /// True once any lazily-validated mapped page failed its CRC.
  bool tainted() const;

 private:
  int dsub() const { return config_.dim / config_.m; }
  int ksub() const { return 1 << config_.nbits; }

  /// PQ-encodes the residual `r` into `codes` (m bytes).
  void EncodeResidual(const float* r, u8* codes) const;

  /// One inverted list, regardless of backing (live vectors or packed
  /// sections). Packed access clamps offsets to the stored totals and
  /// lazily validates the touched pages.
  struct ListView {
    const u32* ids = nullptr;
    const u8* codes = nullptr;  ///< n * m bytes
    u64 n = 0;
  };
  ListView ListAt(u32 cell) const;

  IvfPqConfig config_;
  bool trained_ = false;
  KMeansResult coarse_;
  std::unique_ptr<HnswIndex> coarse_hnsw_;
  /// PQ codebooks: m * ksub * dsub floats (subspace-major).
  std::vector<float> codebooks_;
  /// Inverted lists: per cell, the ids and the packed codes (live mode).
  std::vector<std::vector<u32>> list_ids_;
  std::vector<std::vector<u8>> list_codes_;
  size_t count_ = 0;

  // Packed read-only mode (MapMode::kMapped open): the flattened lists
  // stay in their mapped sections, addressed by prefix offsets.
  bool packed_ = false;
  std::vector<u32> offsets_;  ///< nlist+1 prefix sums of list lengths
  std::shared_ptr<MappedRegion> ids_region_, codes_region_;
  std::unique_ptr<LazyValidator> ids_check_, codes_check_;
  const u32* ids_base_ = nullptr;
  const u8* codes_base_ = nullptr;
};

}  // namespace ann
}  // namespace deepjoin

#endif  // DEEPJOIN_ANN_IVFPQ_H_
