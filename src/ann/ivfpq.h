// Inverted file with product quantization (Jégou et al., 2011) — the
// billion-scale option of paper §3.3 ("construct HNSW over the coarse
// quantizer of IVFPQ", as Faiss does). A k-means coarse quantizer routes
// vectors to inverted lists; residuals are PQ-encoded; queries scan the
// `nprobe` nearest lists with asymmetric distance computation (ADC) using
// per-subspace lookup tables.
#ifndef DEEPJOIN_ANN_IVFPQ_H_
#define DEEPJOIN_ANN_IVFPQ_H_

#include <memory>
#include <vector>

#include "ann/hnsw.h"
#include "ann/kmeans.h"
#include "ann/vector_index.h"

namespace deepjoin {
namespace ann {

struct IvfPqConfig {
  int dim = 0;
  int nlist = 64;       ///< number of coarse cells
  int m = 8;            ///< PQ subspaces (dim % m == 0)
  int nbits = 6;        ///< bits per code (ksub = 1 << nbits, <= 8)
  int nprobe = 8;       ///< coarse cells scanned per query
  int train_iters = 15;
  u64 seed = 17;
  /// When true, the coarse quantizer is searched through a small HNSW
  /// graph instead of a linear scan — the Faiss-style composition the
  /// paper references for billion-scale data.
  bool hnsw_coarse = false;
};

class IvfPqIndex : public VectorIndex {
 public:
  explicit IvfPqIndex(const IvfPqConfig& config);

  /// Trains the coarse quantizer and PQ codebooks. Must precede Add().
  void Train(const float* data, size_t n);
  bool trained() const { return trained_; }

  using VectorIndex::Search;

  void Add(const float* vec) override;
  /// params.nprobe > 0 overrides config.nprobe for this query only (the
  /// old set_nprobe mutator raced with concurrent searches and is gone).
  std::vector<Neighbor> Search(const float* query, size_t k,
                               const AnnSearchParams& params) const override;
  size_t size() const override { return count_; }
  int dim() const override { return config_.dim; }
  const char* name() const override {
    return config_.hnsw_coarse ? "ivfpq+hnsw" : "ivfpq";
  }

  int nprobe_default() const { return config_.nprobe; }

 private:
  int dsub() const { return config_.dim / config_.m; }
  int ksub() const { return 1 << config_.nbits; }

  /// PQ-encodes the residual `r` into `codes` (m bytes).
  void EncodeResidual(const float* r, u8* codes) const;

  IvfPqConfig config_;
  bool trained_ = false;
  KMeansResult coarse_;
  std::unique_ptr<HnswIndex> coarse_hnsw_;
  /// PQ codebooks: m * ksub * dsub floats (subspace-major).
  std::vector<float> codebooks_;
  /// Inverted lists: per cell, the ids and the packed codes.
  std::vector<std::vector<u32>> list_ids_;
  std::vector<std::vector<u8>> list_codes_;
  size_t count_ = 0;
};

}  // namespace ann
}  // namespace deepjoin

#endif  // DEEPJOIN_ANN_IVFPQ_H_
