#include "ann/hnsw.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/crc32c.h"
#include "util/trace.h"

namespace deepjoin {
namespace ann {

namespace {

// Binary-heap helpers over the pooled, capacity-reusing scratch vectors —
// the one place the query path grows a container (warmup-only). Min-heaps
// order by Neighbor's total order (dist, then id), max-heaps by its
// reverse, exactly like the priority_queues they replaced.
void HeapPushMin(std::vector<Neighbor>& heap, Neighbor n) {
  heap.push_back(n);  // dj_alloc: allow(alloc) -- capacity-reusing scratch
  std::push_heap(heap.begin(), heap.end(), std::greater<>{});
}
void HeapPushMax(std::vector<Neighbor>& heap, Neighbor n) {
  heap.push_back(n);  // dj_alloc: allow(alloc) -- capacity-reusing scratch
  std::push_heap(heap.begin(), heap.end());
}
void HeapPopMin(std::vector<Neighbor>& heap) {
  std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
  heap.pop_back();
}
void HeapPopMax(std::vector<Neighbor>& heap) {
  std::pop_heap(heap.begin(), heap.end());
  heap.pop_back();
}

constexpr u32 kHnswMagic = 0x484E5357;  // "HNSW"
// v1: pre-mutability (no tombstones / capacity); still loadable.
// v2: adds max_elements to the config block and a tombstone id array.
constexpr u32 kHnswVersion = 2;
// Level draws are exponential with mean 1/ln(M); anything this deep in a
// file (or a replayed WAL record) is corruption, and it bounds the
// per-node adjacency allocation.
constexpr i32 kMaxStoredLevel = 63;

}  // namespace

HnswIndex::HnswIndex(const HnswConfig& config)
    : config_(config),
      level_mult_(1.0 / std::log(static_cast<double>(config.M))),
      rng_(config.seed),
      sync_(std::make_unique<Sync>()),
      visited_pool_(std::make_unique<VisitedPool>()) {
  DJ_CHECK(config_.dim > 0 && config_.M >= 2);
  // Round capacity up to whole chunks (at least one) and pre-reserve the
  // chunk pointer arrays: published storage never moves under readers.
  if (config_.max_elements < kChunkSize) config_.max_elements = kChunkSize;
  const size_t num_chunks =
      (static_cast<size_t>(config_.max_elements) + kChunkSize - 1) >>
      kChunkShift;
  config_.max_elements = static_cast<u32>(num_chunks << kChunkShift);
  data_chunks_.reserve(num_chunks);
  node_chunks_.reserve(num_chunks);
}

HnswIndex::HnswIndex(HnswIndex&& other) noexcept
    : config_(other.config_),
      level_mult_(other.level_mult_),
      rng_(other.rng_),
      data_chunks_(std::move(other.data_chunks_)),
      node_chunks_(std::move(other.node_chunks_)),
      count_(other.count_.load(std::memory_order_relaxed)),
      dead_(other.dead_.load(std::memory_order_relaxed)),
      entry_point_(other.entry_point_.load(std::memory_order_relaxed)),
      store_(std::move(other.store_)),
      refine_(std::move(other.refine_)),
      graph_region_(std::move(other.graph_region_)),
      graph_owned_(std::move(other.graph_owned_)),
      graph_check_(std::move(other.graph_check_)),
      g_upper_len_(other.g_upper_len_),
      ro_deleted_(std::move(other.ro_deleted_)),
      sync_(std::move(other.sync_)),
      visited_pool_(std::move(other.visited_pool_)) {
  if (store_ != nullptr) {
    // A small owned graph may live in the string's SSO buffer, which just
    // moved; rebind the views.
    SetGraphPointers(graph_region_ != nullptr ? graph_region_->data()
                                              : graph_owned_.data(),
                     count_.load(std::memory_order_relaxed), g_upper_len_);
  }
}

HnswIndex& HnswIndex::operator=(HnswIndex&& other) noexcept {
  if (this == &other) return *this;
  config_ = other.config_;
  level_mult_ = other.level_mult_;
  rng_ = other.rng_;
  data_chunks_ = std::move(other.data_chunks_);
  node_chunks_ = std::move(other.node_chunks_);
  count_.store(other.count_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  dead_.store(other.dead_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  entry_point_.store(other.entry_point_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  store_ = std::move(other.store_);
  refine_ = std::move(other.refine_);
  graph_region_ = std::move(other.graph_region_);
  graph_owned_ = std::move(other.graph_owned_);
  graph_check_ = std::move(other.graph_check_);
  g_upper_len_ = other.g_upper_len_;
  ro_deleted_ = std::move(other.ro_deleted_);
  g_levels_ = g_level0_ = g_upper_off_ = g_upper_ = nullptr;
  if (store_ != nullptr) {
    SetGraphPointers(graph_region_ != nullptr ? graph_region_->data()
                                              : graph_owned_.data(),
                     count_.load(std::memory_order_relaxed), g_upper_len_);
  }
  sync_ = std::move(other.sync_);
  visited_pool_ = std::move(other.visited_pool_);
  return *this;
}

void HnswIndex::SetGraphPointers(const void* base, u64 n, u64 upper_len) {
  const u32* w = static_cast<const u32*>(base);
  g_levels_ = w;
  g_level0_ = w + n;
  g_upper_off_ = g_level0_ + n * (1 + 2 * static_cast<u64>(config_.M));
  g_upper_ = g_upper_off_ + n + 1;
  g_upper_len_ = upper_len;
}

void HnswIndex::TouchGraph(const u32* p, u64 nwords) const {
  if (graph_check_ == nullptr || nwords == 0) return;
  const u64 off = static_cast<u64>(reinterpret_cast<const u8*>(p) -
                                   reinterpret_cast<const u8*>(g_levels_));
  graph_check_->Touch(off, nwords * sizeof(u32));
}

i32 HnswIndex::NodeLevelOf(u32 id) const {
  if (store_ == nullptr) return NodeAt(id).level;
  TouchGraph(g_levels_ + id, 1);
  return std::min<i32>(static_cast<i32>(g_levels_[id]), kMaxStoredLevel);
}

bool HnswIndex::tainted() const {
  return (store_ != nullptr && store_->tainted()) ||
         (refine_ != nullptr && refine_->tainted()) ||
         (graph_check_ != nullptr && graph_check_->tainted());
}

void HnswIndex::CopyLinks(u32 id, int level, std::vector<u32>* out) const {
  out->clear();
  if (store_ != nullptr) {
    // Packed read-only graph: no locks (immutable), every count and walk
    // clamped to the stored bounds so corrupt mapped words can never walk
    // out of the section (wrong results, never UB).
    const u64 cap0 = 2 * static_cast<u64>(config_.M);
    if (level == 0) {
      const u32* row = g_level0_ + static_cast<u64>(id) * (1 + cap0);
      TouchGraph(row, 1 + cap0);
      const u64 cnt = std::min<u64>(row[0], cap0);
      out->insert(out->end(), row + 1, row + 1 + cnt);  // dj_alloc: allow(alloc)
      return;
    }
    TouchGraph(g_upper_off_ + id, 2);
    u64 off = g_upper_off_[id];
    const u64 end = std::min<u64>(g_upper_off_[id + 1], g_upper_len_);
    if (off > end) return;  // corrupt offsets: treat as no links
    TouchGraph(g_upper_ + off, end - off);
    for (int lev = 1; off < end; ++lev) {
      const u64 cnt = std::min<u64>(g_upper_[off], end - off - 1);
      if (lev == level) {
        out->insert(out->end(), g_upper_ + off + 1,  // dj_alloc: allow(alloc)
                    g_upper_ + off + 1 + cnt);
        return;
      }
      off += cnt + 1;
    }
    return;
  }
  MutexLock lock(sync_->stripes[StripeOf(id)].link_mu);
  const std::vector<u32>& links = NodeAt(id).links[static_cast<size_t>(level)];
  // Capacity-reusing scratch; growth is warmup-only (degree caps bound it).
  out->insert(out->end(), links.begin(), links.end());  // dj_alloc: allow(alloc)
}

u32 HnswIndex::GreedyClosest(const float* query, u32 entry, int level,
                             VisitedScratch* scratch, SearchWork* work) const {
  u32 cur = entry;
  float cur_dist = Dist(query, cur);
  // Tally into locals (registers) unconditionally — a per-eval branch +
  // store through `work` costs measurable time in this loop; one flush at
  // the end does not.
  u64 dist_evals = 1;
  u64 hops = 0;
  bool improved = true;
  while (improved) {
    improved = false;
    CopyLinks(cur, level, &scratch->link_buf);
    for (u32 nb : scratch->link_buf) {
      if (nb >= scratch->bound) continue;  // published after this query
      const float d = Dist(query, nb);
      ++dist_evals;
      if (d < cur_dist) {
        cur = nb;
        cur_dist = d;
        improved = true;
      }
    }
    if (improved) ++hops;
  }
  if (work != nullptr) {
    work->dist_evals += dist_evals;
    work->hops += hops;
  }
  return cur;
}

std::unique_ptr<HnswIndex::VisitedScratch> HnswIndex::VisitedPool::Acquire(
    size_t n) const {
  std::unique_ptr<VisitedScratch> scratch;
  {
    MutexLock lock(mu_);
    if (!free_.empty()) {
      scratch = std::move(free_.back());
      free_.pop_back();
    }
  }
  // Pool warmup: once every concurrent query owns a scratch, Acquire is
  // always served from the free list; the stamp grows to the index size
  // once and then reuses capacity.
  if (!scratch) scratch = std::make_unique<VisitedScratch>();  // dj_alloc: allow(alloc)
  if (scratch->stamp.size() < n) scratch->stamp.resize(n, 0);  // dj_alloc: allow(alloc)
  if (scratch->epoch == std::numeric_limits<u32>::max()) {
    std::fill(scratch->stamp.begin(), scratch->stamp.end(), 0);
    scratch->epoch = 0;
  }
  ++scratch->epoch;
  return scratch;
}

void HnswIndex::VisitedPool::Release(
    std::unique_ptr<VisitedScratch> scratch) const {
  MutexLock lock(mu_);
  // Pool-vector growth is warmup-only: capacity reaches the maximum
  // number of concurrent queries and then every push reuses a freed slot.
  free_.push_back(std::move(scratch));  // dj_alloc: allow(alloc)
}

void HnswIndex::SearchLayer(const float* query, u32 entry, int ef, int level,
                            std::vector<Neighbor>* out,
                            VisitedScratch* scratch, bool filter_deleted,
                            SearchWork* work) const {
  const u32 epoch = scratch->epoch;
  auto visit = [&stamp = scratch->stamp, epoch](u32 id) {
    if (stamp[id] == epoch) return false;
    stamp[id] = epoch;
    return true;
  };
  auto live = [this, filter_deleted](u32 id) {
    return !filter_deleted || !DeletedAt(id);
  };

  // `candidates`: nearest-first frontier. `results`: farthest-first bounded
  // set of the best `ef` seen so far. Both are heap vectors living in the
  // pooled scratch (see VisitedScratch), popped empty before Release.
  // Tombstoned nodes stay in the frontier (they still route) but never
  // land in `results`.
  std::vector<Neighbor>& candidates = scratch->candidates;
  std::vector<Neighbor>& results = scratch->results;
  candidates.clear();
  results.clear();

  const float d0 = Dist(query, entry);
  visit(entry);
  HeapPushMin(candidates, {d0, entry});
  if (live(entry)) HeapPushMax(results, {d0, entry});

  // Tally into locals (registers) unconditionally — a per-eval branch +
  // store through `work` is measurable in this loop; flushing once is not.
  u64 dist_evals = 1;
  u64 hops = 0;
  while (!candidates.empty()) {
    const Neighbor c = candidates.front();
    if (results.size() >= static_cast<size_t>(ef) &&
        c.dist > results.front().dist) {
      break;
    }
    HeapPopMin(candidates);
    ++hops;
    CopyLinks(c.id, level, &scratch->link_buf);
    for (u32 nb : scratch->link_buf) {
      if (nb >= scratch->bound) continue;  // published after this query
      if (!visit(nb)) continue;
      const float d = Dist(query, nb);
      ++dist_evals;
      if (results.size() < static_cast<size_t>(ef) ||
          d < results.front().dist) {
        HeapPushMin(candidates, {d, nb});
        if (live(nb)) {
          HeapPushMax(results, {d, nb});
          if (results.size() > static_cast<size_t>(ef)) HeapPopMax(results);
        }
      }
    }
  }
  if (work != nullptr) {
    work->dist_evals += dist_evals;
    work->hops += hops;
  }
  // Drain the max-heap back to front: popping a total order yields the
  // ascending-by-distance output the old priority_queue path produced.
  out->clear();
  // Capacity-reusing caller buffer; growth is warmup-only.
  out->resize(results.size());  // dj_alloc: allow(alloc)
  for (size_t i = out->size(); i-- > 0;) {
    (*out)[i] = results.front();
    HeapPopMax(results);
  }
}

std::vector<u32> HnswIndex::SelectNeighbors(
    const float* query, const std::vector<Neighbor>& candidates,
    int m) const {
  (void)query;
  std::vector<u32> kept;
  kept.reserve(static_cast<size_t>(m));
  for (const Neighbor& c : candidates) {
    if (static_cast<int>(kept.size()) >= m) break;
    bool good = true;
    for (u32 r : kept) {
      // Candidate is dominated if it is closer to a kept neighbour than to
      // the query: linking it adds little reach.
      const float d_cr = SquaredL2Distance(VectorAt(c.id), VectorAt(r),
                                           config_.dim);
      if (d_cr < c.dist) {
        good = false;
        break;
      }
    }
    if (good) kept.push_back(c.id);
  }
  // Backfill with nearest skipped candidates if the heuristic was too
  // aggressive (keepPrunedConnections in the paper's terms).
  if (static_cast<int>(kept.size()) < m) {
    for (const Neighbor& c : candidates) {
      if (static_cast<int>(kept.size()) >= m) break;
      if (std::find(kept.begin(), kept.end(), c.id) == kept.end()) {
        kept.push_back(c.id);
      }
    }
  }
  return kept;
}

i32 HnswIndex::DrawLevelLocked() {
  // Clamped so a drawn level is always storable/replayable (the WAL
  // loader rejects levels past kMaxStoredLevel as corruption).
  const i32 level = static_cast<i32>(rng_.Exponential(1.0) * level_mult_);
  return std::min(level, kMaxStoredLevel);
}

i32 HnswIndex::DrawLevel() {
  MutexLock lock(sync_->update_mu);
  return DrawLevelLocked();
}

void HnswIndex::Add(const float* vec) {
  DJ_CHECK_MSG(store_ == nullptr,
               "hnsw Add on a read-only store-backed index");
  MutexLock lock(sync_->update_mu);
  const i32 level = DrawLevelLocked();
  const Status st = InsertWithLevelLocked(vec, level, nullptr);
  // Add is the legacy infallible bulk-build API; callers size
  // max_elements to the build, so exhaustion is a programming error.
  DJ_CHECK_MSG(st.ok(), st.ToString().c_str());
}

Status HnswIndex::Insert(const float* vec, u32* id, i32* level) {
  MutexLock lock(sync_->update_mu);
  const i32 drawn = DrawLevelLocked();
  if (level != nullptr) *level = drawn;
  return InsertWithLevelLocked(vec, drawn, id);
}

Status HnswIndex::InsertWithLevel(const float* vec, i32 level, u32* id) {
  MutexLock lock(sync_->update_mu);
  return InsertWithLevelLocked(vec, level, id);
}

Status HnswIndex::InsertWithLevelLocked(const float* vec, i32 level,
                                        u32* id_out) {
  if (store_ != nullptr) {
    return Status::FailedPrecondition(
        "hnsw Insert: index is read-only (store-backed open; reopen with "
        "MapMode::kOwned float storage for a mutable index)");
  }
  if (level < 0 || level > kMaxStoredLevel) {
    return Status::InvalidArgument("hnsw Insert: level " +
                                   std::to_string(level) + " out of range");
  }
  const u32 id = count_.load(std::memory_order_relaxed);
  if (id >= config_.max_elements) {
    return Status::FailedPrecondition(
        "hnsw Insert: index at max_elements capacity (" +
        std::to_string(config_.max_elements) + ")");
  }

  // Materialise storage for the new node. The chunk pointer arrays were
  // reserved to capacity in the constructor, so these push_backs never
  // reallocate the arrays a concurrent reader is indexing.
  while ((static_cast<u64>(data_chunks_.size()) << kChunkShift) <= id) {
    data_chunks_.push_back(std::make_unique<float[]>(
        static_cast<size_t>(kChunkSize) * config_.dim));
    node_chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
  }
  float* slot = data_chunks_[id >> kChunkShift].get() +
                static_cast<size_t>(id & kChunkMask) * config_.dim;
  std::memcpy(slot, vec, sizeof(float) * static_cast<size_t>(config_.dim));
  Node& node = NodeAt(id);
  node.level = level;
  node.deleted.store(false, std::memory_order_relaxed);
  node.links.assign(static_cast<size_t>(level) + 1, {});
  for (size_t lev = 0; lev < node.links.size(); ++lev) {
    // Reserve past the degree cap so steady-state back-link pushes rarely
    // reallocate while a stripe lock is held (correctness never depends on
    // it: all link access is lock-protected).
    const int max_degree = lev == 0 ? 2 * config_.M : config_.M;
    node.links[lev].reserve(static_cast<size_t>(max_degree) + 1);
  }
  // Publish the node: readers pinning a bound after this store may visit
  // id, whose vector and Node metadata are fully written above. Its links
  // are still empty and nothing points at it yet, so it is unreachable
  // until the wiring below lands (under stripe locks).
  count_.store(id + 1, std::memory_order_release);

  const u64 ep_packed = entry_point_.load(std::memory_order_relaxed);
  if (ep_packed == 0) {
    entry_point_.store(PackEntry(level, id), std::memory_order_release);
    if (id_out != nullptr) *id_out = id;
    return Status::OK();
  }

  const u32 entry = static_cast<u32>(ep_packed);
  const int max_level = static_cast<int>(ep_packed >> 32) - 1;
  const float* q = VectorAt(id);
  auto scratch = visited_pool_->Acquire(id + 1);
  scratch->bound = id + 1;

  u32 ep = entry;
  // Descend through levels above the new node's level.
  for (int lev = max_level; lev > level; --lev) {
    ep = GreedyClosest(q, ep, lev, scratch.get());
  }
  // Connect on each level the node participates in.
  std::vector<Neighbor> candidates;
  for (int lev = std::min(static_cast<int>(level), max_level); lev >= 0;
       --lev) {
    SearchLayer(q, ep, config_.ef_construction, lev, &candidates,
                scratch.get(), /*filter_deleted=*/false);
    const int max_degree = lev == 0 ? 2 * config_.M : config_.M;
    auto neighbors = SelectNeighbors(q, candidates, config_.M);
    {
      MutexLock link_lock(sync_->stripes[StripeOf(id)].link_mu);
      NodeAt(id).links[static_cast<size_t>(lev)].assign(neighbors.begin(),
                                                        neighbors.end());
    }
    for (u32 nb : neighbors) {
      MutexLock link_lock(sync_->stripes[StripeOf(nb)].link_mu);
      auto& back = NodeAt(nb).links[static_cast<size_t>(lev)];
      back.push_back(id);
      if (static_cast<int>(back.size()) > max_degree) {
        // Shrink the neighbour's adjacency with the same heuristic.
        std::vector<Neighbor> cand;
        cand.reserve(back.size());
        const float* nb_vec = VectorAt(nb);
        for (u32 x : back) {
          cand.push_back({SquaredL2Distance(nb_vec, VectorAt(x), config_.dim),
                          x});
        }
        std::sort(cand.begin(), cand.end());
        back = SelectNeighbors(nb_vec, cand, max_degree);
      }
    }
    if (!candidates.empty()) ep = candidates.front().id;
  }
  if (level > max_level) {
    entry_point_.store(PackEntry(level, id), std::memory_order_release);
  }
  visited_pool_->Release(std::move(scratch));
  if (id_out != nullptr) *id_out = id;
  return Status::OK();
}

Status HnswIndex::Remove(u32 id) {
  MutexLock lock(sync_->update_mu);
  if (id >= count_.load(std::memory_order_relaxed)) {
    return Status::NotFound("hnsw Remove: id " + std::to_string(id) +
                            " never assigned");
  }
  if (store_ != nullptr) {
    // Read-only mode still supports tombstoning: deletes touch only this
    // side array, never the mapped graph.
    if (ro_deleted_[id].exchange(1, std::memory_order_acq_rel) == 0) {
      dead_.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::OK();
  }
  Node& node = NodeAt(id);
  if (!node.deleted.load(std::memory_order_relaxed)) {
    node.deleted.store(true, std::memory_order_release);
    dead_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

bool HnswIndex::IsDeleted(u32 id) const {
  return id < count_.load(std::memory_order_acquire) && DeletedAt(id);
}

HnswIndex HnswIndex::CompactedCopy(std::vector<u32>* new_to_old) const {
  // Re-runs construction over the live vectors only (a fresh RNG with the
  // configured seed keeps the rebuild deterministic). Reads nothing but
  // immutable vectors and atomic tombstone flags, so concurrent searches
  // on `this` stay safe; the caller serializes against mutators.
  HnswIndex out(config_);
  const u32 n = count_.load(std::memory_order_acquire);
  new_to_old->clear();
  if (store_ != nullptr) {
    // Store-backed source: rebuild from reconstructed rows (lossy for SQ8
    // — the compacted graph holds the decoded vectors).
    std::vector<float> row(static_cast<size_t>(config_.dim));
    for (u32 id = 0; id < n; ++id) {
      if (DeletedAt(id)) continue;
      store_->Reconstruct(id, row.data());
      out.Add(row.data());
      new_to_old->push_back(id);
    }
    return out;
  }
  for (u32 id = 0; id < n; ++id) {
    if (NodeAt(id).deleted.load(std::memory_order_acquire)) continue;
    out.Add(VectorAt(id));
    new_to_old->push_back(id);
  }
  return out;
}

void HnswIndex::SaveLegacy(BinaryWriter& writer) const {
  static_assert(sizeof(int) == sizeof(i32), "levels serialized as i32");
  DJ_CHECK_MSG(store_ == nullptr,
               "SaveLegacy requires a live index (the legacy format has no "
               "packed-graph or quantized representation)");
  const u32 n = count_.load(std::memory_order_acquire);
  const u64 ep_packed = entry_point_.load(std::memory_order_acquire);
  writer.WriteU32(kHnswMagic);
  writer.WriteU32(kHnswVersion);
  writer.WriteI32(config_.dim);
  writer.WriteI32(config_.M);
  writer.WriteI32(config_.ef_construction);
  writer.WriteI32(config_.ef_search);
  writer.WriteU64(config_.seed);
  writer.WriteU32(config_.max_elements);

  std::vector<float> data;
  data.reserve(static_cast<size_t>(n) * config_.dim);
  std::vector<i32> levels;
  levels.reserve(n);
  std::vector<u32> deleted_ids;
  for (u32 id = 0; id < n; ++id) {
    const float* v = VectorAt(id);
    data.insert(data.end(), v, v + config_.dim);
    const Node& node = NodeAt(id);
    levels.push_back(node.level);
    if (DeletedAt(id)) {
      deleted_ids.push_back(id);
    }
  }
  writer.WriteFloatArray(data.data(), data.size());
  writer.WriteI32Array(levels.data(), levels.size());

  // Adjacency lists flattened into two arrays: one size per (node, level)
  // in order, then every neighbour id concatenated. Coarse records keep
  // the per-record CRC overhead negligible. Each node's lists are
  // snapshotted under its stripe lock so a save concurrent with searches
  // (never with mutators — caller's contract) reads consistent lists.
  std::vector<u32> list_sizes;
  std::vector<u32> all_ids;
  for (u32 id = 0; id < n; ++id) {
    MutexLock link_lock(sync_->stripes[StripeOf(id)].link_mu);
    for (const auto& adj : NodeAt(id).links) {
      list_sizes.push_back(static_cast<u32>(adj.size()));
      all_ids.insert(all_ids.end(), adj.begin(), adj.end());
    }
  }
  writer.WriteU32Array(list_sizes.data(), list_sizes.size());
  writer.WriteU32Array(all_ids.data(), all_ids.size());
  writer.WriteU32(ep_packed == 0 ? 0 : static_cast<u32>(ep_packed));
  writer.WriteI32(static_cast<i32>(ep_packed >> 32) - 1);
  writer.WriteU32Array(deleted_ids.data(), deleted_ids.size());
}

Result<HnswIndex> HnswIndex::LoadLegacyAfterMagic(BinaryReader& reader) {
  u32 version = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != 1 && version != 2) {
    return Status::DataLoss("unsupported HNSW index version " +
                            std::to_string(version));
  }
  HnswConfig config;
  DJ_RETURN_IF_ERROR(reader.ReadI32(&config.dim));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&config.M));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&config.ef_construction));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&config.ef_search));
  DJ_RETURN_IF_ERROR(reader.ReadU64(&config.seed));
  if (version >= 2) {
    DJ_RETURN_IF_ERROR(reader.ReadU32(&config.max_elements));
  }
  // The constructor DJ_CHECKs these invariants; a load path must reject,
  // not abort.
  if (config.dim <= 0 || config.dim > (1 << 20) || config.M < 2 ||
      config.M > (1 << 20) || config.ef_construction <= 0 ||
      config.ef_search <= 0) {
    return Status::DataLoss("HNSW config out of range");
  }
  std::vector<float> data;
  std::vector<i32> levels;
  std::vector<u32> list_sizes;
  std::vector<u32> all_ids;
  u32 entry = 0;
  i32 max_level = -1;
  DJ_RETURN_IF_ERROR(reader.ReadFloatArray(&data));
  DJ_RETURN_IF_ERROR(reader.ReadI32Array(&levels));
  DJ_RETURN_IF_ERROR(reader.ReadU32Array(&list_sizes));
  DJ_RETURN_IF_ERROR(reader.ReadU32Array(&all_ids));
  DJ_RETURN_IF_ERROR(reader.ReadU32(&entry));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&max_level));
  std::vector<u32> deleted_ids;
  if (version >= 2) {
    DJ_RETURN_IF_ERROR(reader.ReadU32Array(&deleted_ids));
  }

  const u64 n = levels.size();
  if (data.size() != n * static_cast<u64>(config.dim)) {
    return Status::DataLoss("HNSW vector payload does not match node count");
  }
  return BuildLive(config, data.data(), n, levels, list_sizes, all_ids,
                   entry, max_level, deleted_ids);
}

Result<HnswIndex> HnswIndex::BuildLive(
    HnswConfig config, const float* rows, u64 n,
    const std::vector<i32>& levels, const std::vector<u32>& list_sizes,
    const std::vector<u32>& all_ids, u32 entry, i32 max_level,
    const std::vector<u32>& deleted_ids) {
  if (n > std::numeric_limits<u32>::max() - kChunkSize) {
    return Status::DataLoss("HNSW node count out of range");
  }
  u64 total_lists = 0;
  i32 deepest = -1;
  for (i32 lv : levels) {
    if (lv < 0 || lv > kMaxStoredLevel) {
      return Status::DataLoss("HNSW node level out of range");
    }
    total_lists += static_cast<u64>(lv) + 1;
    deepest = std::max(deepest, lv);
  }
  if (list_sizes.size() != total_lists) {
    return Status::DataLoss("HNSW adjacency list count mismatch");
  }
  u64 total_ids = 0;
  for (u32 s : list_sizes) total_ids += s;
  if (all_ids.size() != total_ids) {
    return Status::DataLoss("HNSW adjacency id count mismatch");
  }
  for (u32 id : all_ids) {
    if (id >= n) return Status::DataLoss("HNSW neighbour id out of range");
  }
  if (n == 0) {
    if (max_level != -1) {
      return Status::DataLoss("HNSW empty index with non-empty entry point");
    }
  } else {
    if (entry >= n || max_level != deepest ||
        levels[entry] != max_level) {
      return Status::DataLoss("HNSW entry point inconsistent with levels");
    }
  }
  for (u32 id : deleted_ids) {
    if (id >= n) return Status::DataLoss("HNSW tombstone id out of range");
  }

  // A file written with a smaller capacity than its node count (or a v1
  // file, whose config has the default) still loads: capacity covers the
  // nodes on disk.
  if (static_cast<u64>(config.max_elements) < n) {
    config.max_elements = static_cast<u32>(n);
  }
  HnswIndex index(config);
  const size_t num_chunks = (n + kChunkSize - 1) >> kChunkShift;
  for (size_t c = 0; c < num_chunks; ++c) {
    index.data_chunks_.push_back(std::make_unique<float[]>(
        static_cast<size_t>(kChunkSize) * config.dim));
    index.node_chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
  }
  size_t list_idx = 0;
  size_t id_idx = 0;
  for (u64 i = 0; i < n; ++i) {
    const u32 id = static_cast<u32>(i);
    std::memcpy(index.data_chunks_[id >> kChunkShift].get() +
                    static_cast<size_t>(id & kChunkMask) * config.dim,
                rows + i * static_cast<u64>(config.dim),
                sizeof(float) * static_cast<size_t>(config.dim));
    Node& node = index.NodeAt(id);
    node.level = levels[i];
    node.links.resize(static_cast<size_t>(levels[i]) + 1);
    for (auto& adj : node.links) {
      const u32 count = list_sizes[list_idx++];
      adj.assign(all_ids.begin() + static_cast<long>(id_idx),
                 all_ids.begin() + static_cast<long>(id_idx + count));
      id_idx += count;
    }
  }
  u32 dead = 0;
  for (u32 id : deleted_ids) {
    Node& node = index.NodeAt(id);
    if (!node.deleted.load(std::memory_order_relaxed)) {
      node.deleted.store(true, std::memory_order_relaxed);
      ++dead;
    }
  }
  index.count_.store(static_cast<u32>(n), std::memory_order_release);
  index.dead_.store(dead, std::memory_order_relaxed);
  index.entry_point_.store(n == 0 ? 0 : PackEntry(max_level, entry),
                           std::memory_order_release);
  return index;
}

void HnswIndex::PackGraph(std::vector<u32>* words, u64* upper_len) const {
  const u32 n = count_.load(std::memory_order_acquire);
  const u64 cap0 = 1 + 2 * static_cast<u64>(config_.M);  // [cnt][<=2M ids]
  const u64 capu = static_cast<u64>(config_.M);
  std::vector<u32> levels(n, 0);
  std::vector<u32> level0(static_cast<size_t>(n) * cap0, 0);
  std::vector<u32> upper_off(static_cast<size_t>(n) + 1, 0);
  std::vector<u32> upper;
  std::vector<u32> scratch;
  for (u32 id = 0; id < n; ++id) {
    const i32 level = NodeLevelOf(id);
    levels[id] = static_cast<u32>(level);
    CopyLinks(id, 0, &scratch);
    u32* row = level0.data() + static_cast<u64>(id) * cap0;
    const u64 cnt0 = std::min<u64>(scratch.size(), cap0 - 1);
    row[0] = static_cast<u32>(cnt0);
    std::copy(scratch.begin(), scratch.begin() + static_cast<long>(cnt0),
              row + 1);
    upper_off[id] = static_cast<u32>(upper.size());
    for (i32 lev = 1; lev <= level; ++lev) {
      CopyLinks(id, lev, &scratch);
      const u64 cnt = std::min<u64>(scratch.size(), capu);
      upper.push_back(static_cast<u32>(cnt));
      upper.insert(upper.end(), scratch.begin(),
                   scratch.begin() + static_cast<long>(cnt));
    }
    // Offsets are stored as u32 words; the degree caps make overflowing
    // them need >4G upper-level ids, far past the u32 id space the graph
    // itself is limited to.
    DJ_CHECK_MSG(upper.size() <= std::numeric_limits<u32>::max(),
                 "packed upper region exceeds u32 offsets");
  }
  upper_off[n] = static_cast<u32>(upper.size());
  *upper_len = upper.size();
  words->clear();
  words->reserve(levels.size() + level0.size() + upper_off.size() +
                 upper.size());
  words->insert(words->end(), levels.begin(), levels.end());
  words->insert(words->end(), level0.begin(), level0.end());
  words->insert(words->end(), upper_off.begin(), upper_off.end());
  words->insert(words->end(), upper.begin(), upper.end());
}

// hnsw payload := dim:i32 M:i32 efc:i32 efs:i32 seed:u64 max_elements:u32
//                 n:u64 entry:u32 max_level:i32 deleted:u32[]
//                 primary_kind:u32 has_refine:u32 upper_len:u64
//                 graph_section store_payload [refine_store_payload]
//
// The graph travels as ONE page-aligned section so a mapped open touches
// none of it: levels[n] | level0[n*(1+2M)] | upper_off[n+1] |
// upper[upper_len], all u32. level0 rows are fixed-stride [cnt][ids,
// zero-padded]; upper holds each node's level-1..L lists back to back as
// [cnt][ids], located via upper_off.

Status HnswIndex::Save(BinaryWriter& writer,
                       const SaveOptions& options) const {
  static_assert(sizeof(int) == sizeof(i32), "config serialized as i32");
  const u32 n = count_.load(std::memory_order_acquire);
  const u64 ep_packed = entry_point_.load(std::memory_order_acquire);

  // Resolve the row source up front so an impossible combination fails
  // before any bytes are written.
  const StorageKind current =
      store_ != nullptr ? store_->kind() : StorageKind::kFloat;
  const StorageKind want =
      options.storage == StorageKind::kAuto ? current : options.storage;
  bool convert_to_sq8 = false;
  const VectorStore* primary = store_.get();  // nullptr in live mode
  const VectorStore* refine = nullptr;
  bool refine_from_live = false;
  if (want == current) {
    if (want == StorageKind::kSq8) refine = refine_.get();
  } else if (want == StorageKind::kSq8) {
    // float -> SQ8: train quantization over the full corpus at save time.
    convert_to_sq8 = true;
    if (options.keep_float_refine) {
      if (store_ != nullptr) {
        refine = store_.get();
      } else {
        refine_from_live = true;
      }
    }
  } else {
    // SQ8 -> float is only lossless if the exact rows were kept.
    if (refine_ == nullptr || refine_->kind() != StorageKind::kFloat) {
      return Status::FailedPrecondition(
          "cannot save an SQ8 hnsw index as float without a float "
          "refinement store (save with keep_float_refine to retain one)");
    }
    primary = refine_.get();
  }

  std::vector<u32> words;
  u64 upper_len = 0;
  PackGraph(&words, &upper_len);
  std::vector<u32> deleted_ids;
  for (u32 id = 0; id < n; ++id) {
    if (DeletedAt(id)) deleted_ids.push_back(id);
  }

  writer.WriteI32(config_.dim);
  writer.WriteI32(config_.M);
  writer.WriteI32(config_.ef_construction);
  writer.WriteI32(config_.ef_search);
  writer.WriteU64(config_.seed);
  writer.WriteU32(config_.max_elements);
  writer.WriteU64(n);
  writer.WriteU32(ep_packed == 0 ? 0 : static_cast<u32>(ep_packed));
  writer.WriteI32(static_cast<i32>(ep_packed >> 32) - 1);
  writer.WriteU32Array(deleted_ids.data(), deleted_ids.size());
  writer.WriteU32(static_cast<u32>(want));
  writer.WriteU32(refine != nullptr || refine_from_live ? 1 : 0);
  writer.WriteU64(upper_len);
  writer.WriteAlignedSection(words.data(), words.size() * sizeof(u32));

  const int d = config_.dim;
  auto live_row = [this](u64 i) { return VectorAt(static_cast<u32>(i)); };
  if (convert_to_sq8) {
    if (store_ != nullptr) {
      const float* base = store_->float_base();
      DJ_CHECK(base != nullptr);
      const size_t dd = static_cast<size_t>(d);
      DJ_RETURN_IF_ERROR(Sq8Store::SaveFromRows(
          writer, d, n, [base, dd](u64 i) { return base + i * dd; }));
    } else {
      DJ_RETURN_IF_ERROR(Sq8Store::SaveFromRows(writer, d, n, live_row));
    }
  } else if (primary != nullptr) {
    DJ_RETURN_IF_ERROR(primary->Save(writer));
  } else {
    DJ_RETURN_IF_ERROR(FloatStore::SaveFromRows(writer, d, n, live_row));
  }
  if (refine != nullptr) {
    DJ_RETURN_IF_ERROR(refine->Save(writer));
  } else if (refine_from_live) {
    DJ_RETURN_IF_ERROR(FloatStore::SaveFromRows(writer, d, n, live_row));
  }
  return writer.status();
}

Result<std::unique_ptr<HnswIndex>> HnswIndex::LoadPayload(
    BinaryReader& reader, const OpenOptions& options) {
  HnswConfig config;
  DJ_RETURN_IF_ERROR(reader.ReadI32(&config.dim));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&config.M));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&config.ef_construction));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&config.ef_search));
  DJ_RETURN_IF_ERROR(reader.ReadU64(&config.seed));
  DJ_RETURN_IF_ERROR(reader.ReadU32(&config.max_elements));
  // The constructor DJ_CHECKs these invariants; a load path must reject,
  // not abort.
  if (config.dim <= 0 || config.dim > (1 << 20) || config.M < 2 ||
      config.M > (1 << 20) || config.ef_construction <= 0 ||
      config.ef_search <= 0) {
    return Status::DataLoss("HNSW config out of range");
  }
  u64 n = 0;
  u32 entry = 0;
  i32 max_level = -1;
  DJ_RETURN_IF_ERROR(reader.ReadU64(&n));
  DJ_RETURN_IF_ERROR(reader.ReadU32(&entry));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&max_level));
  std::vector<u32> deleted_ids;
  DJ_RETURN_IF_ERROR(reader.ReadU32Array(&deleted_ids));
  u32 kind_raw = 0;
  u32 has_refine = 0;
  u64 upper_len = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU32(&kind_raw));
  DJ_RETURN_IF_ERROR(reader.ReadU32(&has_refine));
  DJ_RETURN_IF_ERROR(reader.ReadU64(&upper_len));

  if (n > std::numeric_limits<u32>::max() - kChunkSize) {
    return Status::DataLoss("HNSW node count out of range");
  }
  if (kind_raw != static_cast<u32>(StorageKind::kFloat) &&
      kind_raw != static_cast<u32>(StorageKind::kSq8)) {
    return Status::DataLoss("hnsw: unknown primary storage kind " +
                            std::to_string(kind_raw));
  }
  if (has_refine > 1) {
    return Status::DataLoss("hnsw: corrupt has_refine flag");
  }
  const StorageKind primary_kind = static_cast<StorageKind>(kind_raw);
  if (primary_kind == StorageKind::kFloat && has_refine != 0) {
    return Status::DataLoss("hnsw: float primary with refinement payload");
  }
  const u64 cap0 = 1 + 2 * static_cast<u64>(config.M);
  // n <= 2^32 and cap0 <= 2^21+1 keep n*(1+cap0) far below 2^63; bounding
  // upper_len keeps the total word count from overflowing too.
  if (upper_len > (u64{1} << 48)) {
    return Status::DataLoss("HNSW packed upper region out of range");
  }
  const u64 expect_words = n + n * cap0 + (n + 1) + upper_len;
  SectionInfo ginfo;
  DJ_RETURN_IF_ERROR(reader.ReadSection(&ginfo));
  if (ginfo.length != expect_words * sizeof(u32)) {
    return Status::DataLoss("HNSW packed graph section length mismatch");
  }

  const StorageKind want =
      options.storage == StorageKind::kAuto ? primary_kind : options.storage;
  if (want == StorageKind::kSq8 && primary_kind == StorageKind::kFloat) {
    return Status::FailedPrecondition(
        "file holds float rows; quantize at save time "
        "(SaveOptions.storage = kSq8), not at open");
  }
  if (want == StorageKind::kFloat && primary_kind == StorageKind::kSq8 &&
      has_refine == 0) {
    return Status::FailedPrecondition(
        "file holds SQ8 only; no float payload to open (saved without "
        "keep_float_refine)");
  }

  if (options.map == MapMode::kOwned && want == StorageKind::kFloat) {
    // Owned float open: decode the packed graph back into live (mutable)
    // chunked storage — the legacy load-then-add semantics.
    std::string gbytes;
    DJ_RETURN_IF_ERROR(reader.ReadSectionBytes(ginfo, &gbytes));
    if (primary_kind == StorageKind::kSq8) {
      auto skipped = SkipVectorStore(reader);
      if (!skipped.ok()) return skipped.status();
    }
    auto store_r = LoadVectorStore(reader, options);
    if (!store_r.ok()) return store_r.status();
    std::unique_ptr<VectorStore> rows_store = std::move(store_r).value();
    if (rows_store->kind() != StorageKind::kFloat ||
        rows_store->dim() != config.dim || rows_store->size() != n) {
      return Status::DataLoss("hnsw: row store does not match header");
    }
    const u32* w = reinterpret_cast<const u32*>(gbytes.data());
    const u32* g_levels = w;
    const u32* g_level0 = w + n;
    const u32* g_upper_off = g_level0 + n * cap0;
    const u32* g_upper = g_upper_off + n + 1;
    std::vector<i32> levels(n);
    std::vector<u32> list_sizes;
    std::vector<u32> all_ids;
    for (u64 i = 0; i < n; ++i) {
      const u32 lw = g_levels[i];
      if (lw > static_cast<u32>(kMaxStoredLevel)) {
        return Status::DataLoss("HNSW node level out of range");
      }
      levels[i] = static_cast<i32>(lw);
      const u32* row = g_level0 + i * cap0;
      if (row[0] > cap0 - 1) {
        return Status::DataLoss("HNSW level-0 list size out of range");
      }
      list_sizes.push_back(row[0]);
      all_ids.insert(all_ids.end(), row + 1, row + 1 + row[0]);
      u64 off = g_upper_off[i];
      const u64 end = g_upper_off[i + 1];
      if (off > end || end > upper_len) {
        return Status::DataLoss("HNSW packed upper offsets inconsistent");
      }
      for (i32 lev = 1; lev <= levels[i]; ++lev) {
        if (off >= end) {
          return Status::DataLoss("HNSW packed upper list missing");
        }
        const u64 cnt = g_upper[off];
        if (cnt > end - off - 1) {
          return Status::DataLoss("HNSW packed upper list size out of range");
        }
        list_sizes.push_back(static_cast<u32>(cnt));
        all_ids.insert(all_ids.end(), g_upper + off + 1,
                       g_upper + off + 1 + cnt);
        off += cnt + 1;
      }
      if (off != end) {
        return Status::DataLoss("HNSW packed upper region has trailing words");
      }
    }
    auto built = BuildLive(config, rows_store->float_base(), n, levels,
                           list_sizes, all_ids, entry, max_level, deleted_ids);
    if (!built.ok()) return built.status();
    return std::make_unique<HnswIndex>(std::move(built).value());
  }

  // Store-backed read-only mode: graph stays packed (mapped or owned
  // bytes), rows stay in their on-disk representation.
  if (static_cast<u64>(config.max_elements) < n) {
    config.max_elements = static_cast<u32>(n);
  }
  HnswIndex index(config);
  if (options.map == MapMode::kMapped) {
    DJ_RETURN_IF_ERROR(reader.env()->NewMappedRegion(
        reader.path(), ginfo.offset, ginfo.length, &index.graph_region_));
    const u8* base = static_cast<const u8*>(index.graph_region_->data());
    const bool eager = options.verify == VerifyMode::kFull;
    if (eager && ginfo.length > 0 &&
        Crc32c(base, ginfo.length) != ginfo.crc) {
      return Status::DataLoss(reader.path() +
                              ": mapped graph section checksum mismatch");
    }
    index.graph_check_ = std::make_unique<LazyValidator>(base, ginfo, eager);
  } else {
    DJ_RETURN_IF_ERROR(reader.ReadSectionBytes(ginfo, &index.graph_owned_));
  }

  std::unique_ptr<VectorStore> store;
  std::unique_ptr<VectorStore> refine;
  if (want == primary_kind) {
    auto store_r = LoadVectorStore(reader, options);
    if (!store_r.ok()) return store_r.status();
    store = std::move(store_r).value();
    if (has_refine != 0) {
      auto refine_r = LoadVectorStore(reader, options);
      if (!refine_r.ok()) return refine_r.status();
      refine = std::move(refine_r).value();
      if (refine->kind() != StorageKind::kFloat ||
          refine->dim() != store->dim() || refine->size() != store->size()) {
        return Status::DataLoss(
            "hnsw: refinement store does not match primary");
      }
    }
  } else {
    // want float over an SQ8 primary (refine presence checked above):
    // the refinement payload becomes the active store.
    auto skipped = SkipVectorStore(reader);
    if (!skipped.ok()) return skipped.status();
    auto store_r = LoadVectorStore(reader, options);
    if (!store_r.ok()) return store_r.status();
    store = std::move(store_r).value();
  }
  if (store->kind() != want || store->dim() != config.dim ||
      store->size() != n) {
    return Status::DataLoss("hnsw: row store does not match header");
  }
  index.store_ = std::move(store);
  index.refine_ = std::move(refine);
  index.SetGraphPointers(index.graph_region_ != nullptr
                             ? index.graph_region_->data()
                             : index.graph_owned_.data(),
                         n, upper_len);
  index.ro_deleted_ = std::make_unique<std::atomic<u8>[]>(
      static_cast<size_t>(std::max<u64>(n, 1)));
  u32 dead = 0;
  for (u32 id : deleted_ids) {
    if (static_cast<u64>(id) >= n) {
      return Status::DataLoss("HNSW tombstone id out of range");
    }
    if (index.ro_deleted_[id].exchange(1, std::memory_order_relaxed) == 0) {
      ++dead;
    }
  }
  if (n == 0) {
    if (max_level != -1) {
      return Status::DataLoss("HNSW empty index with non-empty entry point");
    }
  } else if (static_cast<u64>(entry) >= n || max_level < 0 ||
             max_level > kMaxStoredLevel) {
    // The packed levels words are not sweepable without touching every
    // page, so only the entry itself is validated here; traversals clamp
    // everything they read.
    return Status::DataLoss("HNSW entry point out of range");
  }
  index.count_.store(static_cast<u32>(n), std::memory_order_release);
  index.dead_.store(dead, std::memory_order_relaxed);
  index.entry_point_.store(n == 0 ? 0 : PackEntry(max_level, entry),
                           std::memory_order_release);
  return std::make_unique<HnswIndex>(std::move(index));
}

std::vector<Neighbor> HnswIndex::Search(const float* query, size_t k,
                                        const AnnSearchParams& params) const {
  std::vector<Neighbor> out;
  SearchInto(query, k, params, &out);
  return out;
}

void HnswIndex::SearchInto(const float* query, size_t k,
                           const AnnSearchParams& params,
                           std::vector<Neighbor>* out) const {
  DJ_TRACE_SPAN("hnsw.search");
  out->clear();
  if (k == 0) return;
  // Entry point first, count second: the writer stores count before entry,
  // so a pinned bound is always past the entry node it routes from.
  const u64 ep_packed = entry_point_.load(std::memory_order_acquire);
  if (ep_packed == 0) return;  // empty (or first insert not yet wired)
  const u32 bound = count_.load(std::memory_order_acquire);

  // The layer traversals tally their work in registers either way (that's
  // free); the pointer only controls whether the tallies are kept and
  // reported below.
  SearchWork tally;
  SearchWork* work = (metrics::Enabled() ||
                      trace::TraceCollector::Current() != nullptr)
                         ? &tally
                         : nullptr;

  auto scratch = visited_pool_->Acquire(bound);
  scratch->bound = bound;
  u32 ep = static_cast<u32>(ep_packed);
  const int top_level = static_cast<int>(ep_packed >> 32) - 1;
  for (int lev = top_level; lev >= 1; --lev) {
    ep = GreedyClosest(query, ep, lev, scratch.get(), work);
  }
  // SQ8 + refinement: over-fetch by refine_factor at the quantized layer,
  // then rerank the candidates with exact float distances below.
  const bool refine = params.refine_factor > 0 && refine_ != nullptr;
  const size_t fetch =
      refine ? k * static_cast<size_t>(params.refine_factor) : k;
  const int ef_base =
      params.ef_search > 0 ? params.ef_search : config_.ef_search;
  const int ef = std::max<int>(ef_base, static_cast<int>(fetch));
  SearchLayer(query, ep, ef, 0, out, scratch.get(), /*filter_deleted=*/true,
              work);
  visited_pool_->Release(std::move(scratch));

  if (work != nullptr) {
    // Function-local statics: the registry lookups allocate once per
    // process, before the steady state the noalloc contract covers.
    static metrics::Counter* const searches =
        metrics::MetricsRegistry::Global().GetCounter(  // dj_alloc: allow(alloc)
            "dj_hnsw_searches_total");
    static metrics::Counter* const dist_evals =
        metrics::MetricsRegistry::Global().GetCounter(  // dj_alloc: allow(alloc)
            "dj_hnsw_dist_evals_total");
    static metrics::Counter* const hops =
        metrics::MetricsRegistry::Global().GetCounter(  // dj_alloc: allow(alloc)
            "dj_hnsw_hops_total");
    // Fraction of the ef result budget actually filled at layer 0; a
    // persistently low occupancy means ef is oversized for the graph.
    static metrics::Histogram* const occupancy =
        metrics::MetricsRegistry::Global().GetHistogram(  // dj_alloc: allow(alloc)
            "dj_hnsw_ef_occupancy",
            {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0});
    searches->Increment();
    dist_evals->Add(tally.dist_evals);
    hops->Add(tally.hops);
    occupancy->Record(static_cast<double>(out->size()) /
                      static_cast<double>(ef));
    trace::Count("hnsw.dist_evals", tally.dist_evals);
    trace::Count("hnsw.hops", tally.hops);
  }

  // Shrink via erase: shrinking never reallocates (resize would trip
  // the growth-call check for no reason).
  if (out->size() > fetch) {
    out->erase(out->begin() + static_cast<long>(fetch), out->end());
  }
  if (refine) RefineResults(*refine_, query, k, out);
}

}  // namespace ann
}  // namespace deepjoin
