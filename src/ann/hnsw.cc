#include "ann/hnsw.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/trace.h"

namespace deepjoin {
namespace ann {

namespace {

// Binary-heap helpers over the pooled, capacity-reusing scratch vectors —
// the one place the query path grows a container (warmup-only). Min-heaps
// order by Neighbor's total order (dist, then id), max-heaps by its
// reverse, exactly like the priority_queues they replaced.
void HeapPushMin(std::vector<Neighbor>& heap, Neighbor n) {
  heap.push_back(n);  // dj_alloc: allow(alloc) -- capacity-reusing scratch
  std::push_heap(heap.begin(), heap.end(), std::greater<>{});
}
void HeapPushMax(std::vector<Neighbor>& heap, Neighbor n) {
  heap.push_back(n);  // dj_alloc: allow(alloc) -- capacity-reusing scratch
  std::push_heap(heap.begin(), heap.end());
}
void HeapPopMin(std::vector<Neighbor>& heap) {
  std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
  heap.pop_back();
}
void HeapPopMax(std::vector<Neighbor>& heap) {
  std::pop_heap(heap.begin(), heap.end());
  heap.pop_back();
}

}  // namespace

HnswIndex::HnswIndex(const HnswConfig& config)
    : config_(config),
      level_mult_(1.0 / std::log(static_cast<double>(config.M))),
      rng_(config.seed),
      visited_pool_(std::make_unique<VisitedPool>()) {
  DJ_CHECK(config_.dim > 0 && config_.M >= 2);
}

u32 HnswIndex::GreedyClosest(const float* query, u32 entry, int level,
                             SearchWork* work) const {
  u32 cur = entry;
  float cur_dist = Dist(query, cur);
  // Tally into locals (registers) unconditionally — a per-eval branch +
  // store through `work` costs measurable time in this loop; one flush at
  // the end does not.
  u64 dist_evals = 1;
  u64 hops = 0;
  bool improved = true;
  while (improved) {
    improved = false;
    for (u32 nb : LinksAt(cur, level)) {
      const float d = Dist(query, nb);
      ++dist_evals;
      if (d < cur_dist) {
        cur = nb;
        cur_dist = d;
        improved = true;
      }
    }
    if (improved) ++hops;
  }
  if (work != nullptr) {
    work->dist_evals += dist_evals;
    work->hops += hops;
  }
  return cur;
}

std::unique_ptr<HnswIndex::VisitedScratch> HnswIndex::VisitedPool::Acquire(
    size_t n) const {
  std::unique_ptr<VisitedScratch> scratch;
  {
    MutexLock lock(mu_);
    if (!free_.empty()) {
      scratch = std::move(free_.back());
      free_.pop_back();
    }
  }
  // Pool warmup: once every concurrent query owns a scratch, Acquire is
  // always served from the free list; the stamp grows to the index size
  // once and then reuses capacity.
  if (!scratch) scratch = std::make_unique<VisitedScratch>();  // dj_alloc: allow(alloc)
  if (scratch->stamp.size() < n) scratch->stamp.resize(n, 0);  // dj_alloc: allow(alloc)
  if (scratch->epoch == std::numeric_limits<u32>::max()) {
    std::fill(scratch->stamp.begin(), scratch->stamp.end(), 0);
    scratch->epoch = 0;
  }
  ++scratch->epoch;
  return scratch;
}

void HnswIndex::VisitedPool::Release(
    std::unique_ptr<VisitedScratch> scratch) const {
  MutexLock lock(mu_);
  // Pool-vector growth is warmup-only: capacity reaches the maximum
  // number of concurrent queries and then every push reuses a freed slot.
  free_.push_back(std::move(scratch));  // dj_alloc: allow(alloc)
}

void HnswIndex::SearchLayer(const float* query, u32 entry, int ef, int level,
                            std::vector<Neighbor>* out,
                            SearchWork* work) const {
  auto scratch = visited_pool_->Acquire(levels_.size());
  const u32 epoch = scratch->epoch;
  auto visit = [&stamp = scratch->stamp, epoch](u32 id) {
    if (stamp[id] == epoch) return false;
    stamp[id] = epoch;
    return true;
  };

  // `candidates`: nearest-first frontier. `results`: farthest-first bounded
  // set of the best `ef` seen so far. Both are heap vectors living in the
  // pooled scratch (see VisitedScratch), popped empty before Release.
  std::vector<Neighbor>& candidates = scratch->candidates;
  std::vector<Neighbor>& results = scratch->results;
  candidates.clear();
  results.clear();

  const float d0 = Dist(query, entry);
  visit(entry);
  HeapPushMin(candidates, {d0, entry});
  HeapPushMax(results, {d0, entry});

  // Tally into locals (registers) unconditionally — a per-eval branch +
  // store through `work` is measurable in this loop; flushing once is not.
  u64 dist_evals = 1;
  u64 hops = 0;
  while (!candidates.empty()) {
    const Neighbor c = candidates.front();
    if (c.dist > results.front().dist &&
        results.size() >= static_cast<size_t>(ef)) {
      break;
    }
    HeapPopMin(candidates);
    ++hops;
    for (u32 nb : LinksAt(c.id, level)) {
      if (!visit(nb)) continue;
      const float d = Dist(query, nb);
      ++dist_evals;
      if (results.size() < static_cast<size_t>(ef) ||
          d < results.front().dist) {
        HeapPushMin(candidates, {d, nb});
        HeapPushMax(results, {d, nb});
        if (results.size() > static_cast<size_t>(ef)) HeapPopMax(results);
      }
    }
  }
  if (work != nullptr) {
    work->dist_evals += dist_evals;
    work->hops += hops;
  }
  // Drain the max-heap back to front: popping a total order yields the
  // ascending-by-distance output the old priority_queue path produced.
  out->clear();
  // Capacity-reusing caller buffer; growth is warmup-only.
  out->resize(results.size());  // dj_alloc: allow(alloc)
  for (size_t i = out->size(); i-- > 0;) {
    (*out)[i] = results.front();
    HeapPopMax(results);
  }
  visited_pool_->Release(std::move(scratch));
}

std::vector<u32> HnswIndex::SelectNeighbors(
    const float* query, const std::vector<Neighbor>& candidates,
    int m) const {
  (void)query;
  std::vector<u32> kept;
  kept.reserve(static_cast<size_t>(m));
  for (const Neighbor& c : candidates) {
    if (static_cast<int>(kept.size()) >= m) break;
    bool good = true;
    for (u32 r : kept) {
      // Candidate is dominated if it is closer to a kept neighbour than to
      // the query: linking it adds little reach.
      const float d_cr = SquaredL2Distance(VectorAt(c.id), VectorAt(r),
                                           config_.dim);
      if (d_cr < c.dist) {
        good = false;
        break;
      }
    }
    if (good) kept.push_back(c.id);
  }
  // Backfill with nearest skipped candidates if the heuristic was too
  // aggressive (keepPrunedConnections in the paper's terms).
  if (static_cast<int>(kept.size()) < m) {
    for (const Neighbor& c : candidates) {
      if (static_cast<int>(kept.size()) >= m) break;
      if (std::find(kept.begin(), kept.end(), c.id) == kept.end()) {
        kept.push_back(c.id);
      }
    }
  }
  return kept;
}

void HnswIndex::Add(const float* vec) {
  const u32 id = static_cast<u32>(levels_.size());
  data_.insert(data_.end(), vec, vec + config_.dim);
  const int level =
      static_cast<int>(rng_.Exponential(1.0) * level_mult_);
  levels_.push_back(level);
  links_.emplace_back(static_cast<size_t>(level) + 1);

  if (id == 0) {
    entry_ = 0;
    max_level_ = level;
    return;
  }

  const float* q = VectorAt(id);
  u32 ep = entry_;
  // Descend through levels above the new node's level.
  for (int lev = max_level_; lev > level; --lev) {
    ep = GreedyClosest(q, ep, lev);
  }
  // Connect on each level the node participates in.
  std::vector<Neighbor> candidates;
  for (int lev = std::min(level, max_level_); lev >= 0; --lev) {
    SearchLayer(q, ep, config_.ef_construction, lev, &candidates);
    const int max_degree = lev == 0 ? 2 * config_.M : config_.M;
    auto neighbors = SelectNeighbors(q, candidates, config_.M);
    for (u32 nb : neighbors) {
      LinksAt(id, lev).push_back(nb);
      auto& back = LinksAt(nb, lev);
      back.push_back(id);
      if (static_cast<int>(back.size()) > max_degree) {
        // Shrink the neighbour's adjacency with the same heuristic.
        std::vector<Neighbor> cand;
        cand.reserve(back.size());
        const float* nb_vec = VectorAt(nb);
        for (u32 x : back) {
          cand.push_back({SquaredL2Distance(nb_vec, VectorAt(x), config_.dim),
                          x});
        }
        std::sort(cand.begin(), cand.end());
        back = SelectNeighbors(nb_vec, cand, max_degree);
      }
    }
    if (!candidates.empty()) ep = candidates.front().id;
  }
  if (level > max_level_) {
    entry_ = id;
    max_level_ = level;
  }
}

namespace {
constexpr u32 kHnswMagic = 0x484E5357;  // "HNSW"
constexpr u32 kHnswVersion = 1;
// Level draws are exponential with mean 1/ln(M); anything this deep in a
// file is corruption, and it bounds the per-node adjacency allocation.
constexpr i32 kMaxStoredLevel = 63;
}  // namespace

void HnswIndex::Save(BinaryWriter& writer) const {
  static_assert(sizeof(int) == sizeof(i32), "levels_ serialized as i32");
  writer.WriteU32(kHnswMagic);
  writer.WriteU32(kHnswVersion);
  writer.WriteI32(config_.dim);
  writer.WriteI32(config_.M);
  writer.WriteI32(config_.ef_construction);
  writer.WriteI32(config_.ef_search);
  writer.WriteU64(config_.seed);
  writer.WriteFloatArray(data_.data(), data_.size());
  writer.WriteI32Array(reinterpret_cast<const i32*>(levels_.data()),
                       levels_.size());
  // Adjacency lists flattened into two arrays: one size per (node, level)
  // in order, then every neighbour id concatenated. Coarse records keep
  // the per-record CRC overhead negligible.
  std::vector<u32> list_sizes;
  std::vector<u32> all_ids;
  for (const auto& per_node : links_) {
    for (const auto& adj : per_node) {
      list_sizes.push_back(static_cast<u32>(adj.size()));
      all_ids.insert(all_ids.end(), adj.begin(), adj.end());
    }
  }
  writer.WriteU32Array(list_sizes.data(), list_sizes.size());
  writer.WriteU32Array(all_ids.data(), all_ids.size());
  writer.WriteU32(entry_);
  writer.WriteI32(max_level_);
}

Result<HnswIndex> HnswIndex::Load(BinaryReader& reader) {
  u32 magic = 0;
  u32 version = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU32(&magic));
  if (magic != kHnswMagic) {
    return Status::DataLoss("not an HNSW index file");
  }
  DJ_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != kHnswVersion) {
    return Status::DataLoss("unsupported HNSW index version " +
                            std::to_string(version));
  }
  HnswConfig config;
  DJ_RETURN_IF_ERROR(reader.ReadI32(&config.dim));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&config.M));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&config.ef_construction));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&config.ef_search));
  DJ_RETURN_IF_ERROR(reader.ReadU64(&config.seed));
  // The constructor DJ_CHECKs these invariants; a load path must reject,
  // not abort.
  if (config.dim <= 0 || config.dim > (1 << 20) || config.M < 2 ||
      config.M > (1 << 20) || config.ef_construction <= 0 ||
      config.ef_search <= 0) {
    return Status::DataLoss("HNSW config out of range");
  }
  HnswIndex index(config);
  std::vector<i32> levels;
  std::vector<u32> list_sizes;
  std::vector<u32> all_ids;
  DJ_RETURN_IF_ERROR(reader.ReadFloatArray(&index.data_));
  DJ_RETURN_IF_ERROR(reader.ReadI32Array(&levels));
  DJ_RETURN_IF_ERROR(reader.ReadU32Array(&list_sizes));
  DJ_RETURN_IF_ERROR(reader.ReadU32Array(&all_ids));
  DJ_RETURN_IF_ERROR(reader.ReadU32(&index.entry_));
  DJ_RETURN_IF_ERROR(reader.ReadI32(&index.max_level_));

  const u64 n = levels.size();
  if (index.data_.size() != n * static_cast<u64>(config.dim)) {
    return Status::DataLoss("HNSW vector payload does not match node count");
  }
  u64 total_lists = 0;
  i32 deepest = -1;
  for (i32 lv : levels) {
    if (lv < 0 || lv > kMaxStoredLevel) {
      return Status::DataLoss("HNSW node level out of range");
    }
    total_lists += static_cast<u64>(lv) + 1;
    deepest = std::max(deepest, lv);
  }
  if (list_sizes.size() != total_lists) {
    return Status::DataLoss("HNSW adjacency list count mismatch");
  }
  u64 total_ids = 0;
  for (u32 s : list_sizes) total_ids += s;
  if (all_ids.size() != total_ids) {
    return Status::DataLoss("HNSW adjacency id count mismatch");
  }
  for (u32 id : all_ids) {
    if (id >= n) return Status::DataLoss("HNSW neighbour id out of range");
  }
  if (n == 0) {
    if (index.max_level_ != -1) {
      return Status::DataLoss("HNSW empty index with non-empty entry point");
    }
  } else {
    if (index.entry_ >= n || index.max_level_ != deepest ||
        levels[index.entry_] != index.max_level_) {
      return Status::DataLoss("HNSW entry point inconsistent with levels");
    }
  }

  index.levels_.assign(levels.begin(), levels.end());
  index.links_.resize(n);
  size_t list_idx = 0;
  size_t id_idx = 0;
  for (u64 i = 0; i < n; ++i) {
    index.links_[i].resize(static_cast<size_t>(levels[i]) + 1);
    for (auto& adj : index.links_[i]) {
      const u32 count = list_sizes[list_idx++];
      adj.assign(all_ids.begin() + static_cast<long>(id_idx),
                 all_ids.begin() + static_cast<long>(id_idx + count));
      id_idx += count;
    }
  }
  return index;
}

std::vector<Neighbor> HnswIndex::Search(const float* query, size_t k,
                                        const AnnSearchParams& params) const {
  std::vector<Neighbor> out;
  SearchInto(query, k, params, &out);
  return out;
}

void HnswIndex::SearchInto(const float* query, size_t k,
                           const AnnSearchParams& params,
                           std::vector<Neighbor>* out) const {
  DJ_TRACE_SPAN("hnsw.search");
  out->clear();
  if (levels_.empty() || k == 0) return;

  // The layer traversals tally their work in registers either way (that's
  // free); the pointer only controls whether the tallies are kept and
  // reported below.
  SearchWork tally;
  SearchWork* work = (metrics::Enabled() ||
                      trace::TraceCollector::Current() != nullptr)
                         ? &tally
                         : nullptr;

  u32 ep = entry_;
  for (int lev = max_level_; lev >= 1; --lev) {
    ep = GreedyClosest(query, ep, lev, work);
  }
  const int ef_base =
      params.ef_search > 0 ? params.ef_search : config_.ef_search;
  const int ef = std::max<int>(ef_base, static_cast<int>(k));
  SearchLayer(query, ep, ef, 0, out, work);

  if (work != nullptr) {
    // Function-local statics: the registry lookups allocate once per
    // process, before the steady state the noalloc contract covers.
    static metrics::Counter* const searches =
        metrics::MetricsRegistry::Global().GetCounter(  // dj_alloc: allow(alloc)
            "dj_hnsw_searches_total");
    static metrics::Counter* const dist_evals =
        metrics::MetricsRegistry::Global().GetCounter(  // dj_alloc: allow(alloc)
            "dj_hnsw_dist_evals_total");
    static metrics::Counter* const hops =
        metrics::MetricsRegistry::Global().GetCounter(  // dj_alloc: allow(alloc)
            "dj_hnsw_hops_total");
    // Fraction of the ef result budget actually filled at layer 0; a
    // persistently low occupancy means ef is oversized for the graph.
    static metrics::Histogram* const occupancy =
        metrics::MetricsRegistry::Global().GetHistogram(  // dj_alloc: allow(alloc)
            "dj_hnsw_ef_occupancy",
            {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0});
    searches->Increment();
    dist_evals->Add(tally.dist_evals);
    hops->Add(tally.hops);
    occupancy->Record(static_cast<double>(out->size()) /
                      static_cast<double>(ef));
    trace::Count("hnsw.dist_evals", tally.dist_evals);
    trace::Count("hnsw.hops", tally.hops);
  }

  // Shrink to k via erase: shrinking never reallocates (resize would trip
  // the growth-call check for no reason).
  if (out->size() > k) {
    out->erase(out->begin() + static_cast<long>(k), out->end());
  }
}

}  // namespace ann
}  // namespace deepjoin
