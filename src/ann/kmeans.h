// Lloyd's k-means with k-means++ seeding. Substrate for IVFPQ's coarse
// quantizer and product-quantization codebooks, and for PEXESO's pivot
// selection.
#ifndef DEEPJOIN_ANN_KMEANS_H_
#define DEEPJOIN_ANN_KMEANS_H_

#include <vector>

#include "util/common.h"
#include "util/rng.h"

namespace deepjoin {
namespace ann {

struct KMeansResult {
  std::vector<float> centroids;   ///< k x dim, row-major
  std::vector<u32> assignments;   ///< one per input vector
  int k = 0;
  int dim = 0;
};

/// Clusters `n` vectors of dimension `dim` (row-major in `data`) into `k`
/// groups under L2. If n < k, duplicates are padded deterministically.
KMeansResult KMeans(const float* data, size_t n, int dim, int k,
                    int max_iters, Rng& rng);

/// Index of the nearest centroid to `vec`.
u32 NearestCentroid(const KMeansResult& km, const float* vec);

}  // namespace ann
}  // namespace deepjoin

#endif  // DEEPJOIN_ANN_KMEANS_H_
