// Common interface for the vector indexes (flat / HNSW / IVFPQ) plus the
// exact flat index. Paper §3.3: column embeddings are indexed offline and
// searched under Euclidean distance; HNSW is the default, with IVFPQ for
// very large repositories.
#ifndef DEEPJOIN_ANN_VECTOR_INDEX_H_
#define DEEPJOIN_ANN_VECTOR_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/status.h"

namespace deepjoin {
namespace ann {

/// A search hit: squared L2 distance and the vector's insertion id.
struct Neighbor {
  float dist;
  u32 id;
  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;
  }
  friend bool operator>(const Neighbor& a, const Neighbor& b) { return b < a; }
};

/// Per-query search knobs. Zero means "use the index's configured
/// default". Overrides travel with the call instead of mutating index
/// state, so concurrent searches with different settings never race on a
/// shared config (the old set_ef_search/set_nprobe mutators are gone).
struct AnnSearchParams {
  int ef_search = 0;  ///< HNSW layer-0 beam width; ignored by other indexes
  int nprobe = 0;     ///< IVFPQ coarse cells scanned; ignored by others
};

class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// Adds one vector; ids are assigned sequentially from 0.
  virtual void Add(const float* vec) = 0;

  /// Tombstones `id`: it stops appearing in results but keeps its id (no
  /// renumbering; storage is reclaimed by a rebuild/compaction). Indexes
  /// without delete support return FailedPrecondition; ids never assigned
  /// return NotFound; deleting a tombstone is OK (idempotent).
  [[nodiscard]] virtual Status Remove(u32 id) {
    (void)id;
    return Status::FailedPrecondition(std::string(name()) +
                                      " does not support Remove");
  }
  virtual bool IsDeleted(u32 id) const {
    (void)id;
    return false;
  }
  /// Number of tombstoned ids (live size == size() - deleted_count()).
  virtual size_t deleted_count() const { return 0; }

  /// Bulk add of n row-major vectors.
  void AddBatch(const float* data, size_t n) {
    for (size_t i = 0; i < n; ++i) Add(data + i * static_cast<size_t>(dim()));
  }

  /// k nearest neighbours of `query` under (squared) L2, nearest first.
  virtual std::vector<Neighbor> Search(const float* query, size_t k,
                                       const AnnSearchParams& params)
      const = 0;

  /// Convenience overload: search with the index's configured defaults.
  std::vector<Neighbor> Search(const float* query, size_t k) const {
    return Search(query, k, AnnSearchParams{});
  }

  /// Writes the k nearest into `*out` (cleared first), nearest first. The
  /// hot query path (EmbeddingSearcher::SearchInto) calls this so indexes
  /// with an allocation-free fast path can reuse the caller's buffer
  /// (HnswIndex overrides this with a DJ_NOALLOC implementation); the
  /// default just forwards to Search.
  virtual void SearchInto(const float* query, size_t k,
                          const AnnSearchParams& params,
                          std::vector<Neighbor>* out) const {
    *out = Search(query, k, params);
  }

  virtual size_t size() const = 0;
  virtual int dim() const = 0;

  /// Human-readable name for bench output.
  virtual const char* name() const = 0;
};

/// Exact brute-force index; ground truth for recall tests and the fallback
/// for tiny repositories.
class FlatIndex : public VectorIndex {
 public:
  explicit FlatIndex(int dim) : dim_(dim) { DJ_CHECK(dim > 0); }

  using VectorIndex::Search;

  void Add(const float* vec) override {
    data_.insert(data_.end(), vec, vec + dim_);
    tombstones_.push_back(0);
  }
  [[nodiscard]] Status Remove(u32 id) override {
    if (id >= tombstones_.size()) {
      return Status::NotFound("flat Remove: id " + std::to_string(id) +
                              " never assigned");
    }
    if (tombstones_[id] == 0) {
      tombstones_[id] = 1;
      ++deleted_;
    }
    return Status::OK();
  }
  bool IsDeleted(u32 id) const override {
    return id < tombstones_.size() && tombstones_[id] != 0;
  }
  size_t deleted_count() const override { return deleted_; }
  std::vector<Neighbor> Search(const float* query, size_t k,
                               const AnnSearchParams& params) const override;
  size_t size() const override {
    return data_.size() / static_cast<size_t>(dim_);
  }
  int dim() const override { return dim_; }
  const char* name() const override { return "flat"; }

  const float* vector(u32 id) const {
    return &data_[static_cast<size_t>(id) * dim_];
  }

 private:
  int dim_;
  std::vector<float> data_;
  std::vector<u8> tombstones_;  // 1 = removed from results
  size_t deleted_ = 0;
};

/// Squared Euclidean distance (the common metric of all indexes).
float SquaredL2Distance(const float* a, const float* b, int dim);

}  // namespace ann
}  // namespace deepjoin

#endif  // DEEPJOIN_ANN_VECTOR_INDEX_H_
