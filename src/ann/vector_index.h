// Common interface for the vector indexes (flat / HNSW / IVFPQ) plus the
// exact flat index. Paper §3.3: column embeddings are indexed offline and
// searched under Euclidean distance; HNSW is the default, with IVFPQ for
// very large repositories.
#ifndef DEEPJOIN_ANN_VECTOR_INDEX_H_
#define DEEPJOIN_ANN_VECTOR_INDEX_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/status.h"
#include "util/top_k.h"

namespace deepjoin {
namespace ann {

class FlatIndex;

/// A search hit: squared L2 distance and the vector's insertion id.
struct Neighbor {
  float dist;
  u32 id;
  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;
  }
  friend bool operator>(const Neighbor& a, const Neighbor& b) { return b < a; }
};

/// Per-query search knobs. Zero means "use the index's configured
/// default". Overrides travel with the call instead of mutating index
/// state, so concurrent searches with different settings never race on a
/// shared config (the old set_ef_search/set_nprobe mutators are gone).
struct AnnSearchParams {
  int ef_search = 0;  ///< HNSW layer-0 beam width; ignored by other indexes
  int nprobe = 0;     ///< IVFPQ coarse cells scanned; ignored by others
};

class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// Adds one vector; ids are assigned sequentially from 0.
  virtual void Add(const float* vec) = 0;

  /// Tombstones `id`: it stops appearing in results but keeps its id (no
  /// renumbering; storage is reclaimed by a rebuild/compaction). Indexes
  /// without delete support return FailedPrecondition; ids never assigned
  /// return NotFound; deleting a tombstone is OK (idempotent).
  [[nodiscard]] virtual Status Remove(u32 id) {
    (void)id;
    return Status::FailedPrecondition(std::string(name()) +
                                      " does not support Remove");
  }
  virtual bool IsDeleted(u32 id) const {
    (void)id;
    return false;
  }
  /// Number of tombstoned ids (live size == size() - deleted_count()).
  virtual size_t deleted_count() const { return 0; }

  /// Bulk add of n row-major vectors.
  void AddBatch(const float* data, size_t n) {
    for (size_t i = 0; i < n; ++i) Add(data + i * static_cast<size_t>(dim()));
  }

  /// k nearest neighbours of `query` under (squared) L2, nearest first.
  virtual std::vector<Neighbor> Search(const float* query, size_t k,
                                       const AnnSearchParams& params)
      const = 0;

  /// Convenience overload: search with the index's configured defaults.
  std::vector<Neighbor> Search(const float* query, size_t k) const {
    return Search(query, k, AnnSearchParams{});
  }

  /// Writes the k nearest into `*out` (cleared first), nearest first. The
  /// hot query path (EmbeddingSearcher::SearchInto) calls this so indexes
  /// with an allocation-free fast path can reuse the caller's buffer
  /// (HnswIndex overrides this with a DJ_NOALLOC implementation); the
  /// default just forwards to Search.
  virtual void SearchInto(const float* query, size_t k,
                          const AnnSearchParams& params,
                          std::vector<Neighbor>* out) const {
    *out = Search(query, k, params);
  }

  /// Scores `nq` queries (row-major, nq x dim) in one call, writing each
  /// query's k nearest into outs[q] (cleared first), nearest first. The
  /// default loops SearchInto per query; FlatIndex overrides it with a
  /// blocked-SGEMM scorer that streams the corpus once per *batch* instead
  /// of once per query — the amortisation the serving layer's adaptive
  /// batcher exists to exploit (DESIGN.md §13).
  virtual void SearchBatchInto(const float* queries, size_t nq, size_t k,
                               const AnnSearchParams& params,
                               std::vector<Neighbor>* outs) const {
    for (size_t q = 0; q < nq; ++q) {
      SearchInto(queries + q * static_cast<size_t>(dim()), k, params,
                 &outs[q]);
    }
  }

  virtual size_t size() const = 0;
  virtual int dim() const = 0;

  /// Human-readable name for bench output.
  virtual const char* name() const = 0;

  /// Downcast hook for callers that can exploit flat-specific machinery
  /// without RTTI — the serving layer uses it to open a cooperative
  /// SharedScan session. nullptr for every other backend.
  virtual const FlatIndex* AsFlat() const { return nullptr; }
};

/// Exact brute-force index; ground truth for recall tests and the fallback
/// for tiny repositories.
class FlatIndex : public VectorIndex {
 public:
  explicit FlatIndex(int dim) : dim_(dim) { DJ_CHECK(dim > 0); }

  using VectorIndex::Search;

  void Add(const float* vec) override;
  [[nodiscard]] Status Remove(u32 id) override {
    if (id >= tombstones_.size()) {
      return Status::NotFound("flat Remove: id " + std::to_string(id) +
                              " never assigned");
    }
    if (tombstones_[id] == 0) {
      tombstones_[id] = 1;
      ++deleted_;
    }
    return Status::OK();
  }
  bool IsDeleted(u32 id) const override {
    return id < tombstones_.size() && tombstones_[id] != 0;
  }
  size_t deleted_count() const override { return deleted_; }
  std::vector<Neighbor> Search(const float* query, size_t k,
                               const AnnSearchParams& params) const override;
  /// Batched exact scan: one blocked SGEMM per corpus tile computes every
  /// query·row dot product, distances recombine from cached row norms
  /// (||q-x||^2 = ||q||^2 - 2 q·x + ||x||^2). Turns the memory-bound
  /// per-query scan (one full corpus stream per query) into a
  /// compute-bound pass (one corpus stream per batch).
  void SearchBatchInto(const float* queries, size_t nq, size_t k,
                       const AnnSearchParams& params,
                       std::vector<Neighbor>* outs) const override;
  size_t size() const override {
    return data_.size() / static_cast<size_t>(dim_);
  }
  int dim() const override { return dim_; }
  const char* name() const override { return "flat"; }
  const FlatIndex* AsFlat() const override { return this; }

  const float* vector(u32 id) const {
    return &data_[static_cast<size_t>(id) * dim_];
  }

  /// Cooperative shared scan (DESIGN.md §13): the corpus is scored one
  /// tile at a time around a circular cursor; a query boards between any
  /// two tiles, rides exactly one wrap (every tile once), and completes.
  /// An arrival therefore waits at most one tile (~sub-millisecond)
  /// instead of a full in-flight corpus pass — this is what keeps the
  /// serving layer's low-rate tail near the single-query floor — while
  /// every rider on a tile shares its single corpus stream exactly like
  /// SearchBatchInto (scalar row-major below the GEMM cutover, tiled
  /// SGEMM at or above it). Results match Search(): every live row is
  /// scored exactly once per rider.
  ///
  /// Single-owner (one dispatcher thread drives Board/Step/Harvest), and
  /// the same concurrency contract as Search: no concurrent structural
  /// mutation of the flat index. The row count is frozen at construction
  /// — rows added later are not scanned; start a new session instead.
  class SharedScan {
   public:
    explicit SharedScan(const FlatIndex* index);
    SharedScan(const SharedScan&) = delete;
    SharedScan& operator=(const SharedScan&) = delete;

    /// Boards one query (copied out) wanting `k` results; returns the
    /// rider's slot, valid until Harvest frees it. k == 0 or an empty
    /// corpus completes with no hits on the next Step.
    size_t Board(const float* query, size_t k);

    /// Scores the next tile for every active rider and appends the slots
    /// of riders that just completed their wrap to `*done` (not cleared).
    /// Returns how many completed; 0 with no riders is a no-op.
    size_t Step(std::vector<size_t>* done);

    /// Moves rider `slot`'s results (nearest first) into `*out` (cleared
    /// first) and recycles the slot. Call exactly once per done slot.
    void Harvest(size_t slot, std::vector<Neighbor>* out);

    size_t active() const { return active_.size(); }
    bool empty() const { return active_.empty(); }
    /// Tiles in one full wrap (0 for an empty corpus).
    size_t tiles() const { return tiles_; }

   private:
    struct Rider {
      std::vector<float> query;  ///< owned copy; capacity reused via slots
      float qnorm = 0.0f;        ///< ||q||^2 for the GEMM recombination
      std::optional<TopK> top;   ///< unset for k == 0 and after Harvest
      size_t tiles_left = 0;     ///< completes when this hits 0
    };

    const FlatIndex* const index_;
    const size_t rows_;  ///< frozen at construction (see class comment)
    const size_t tiles_;
    size_t cursor_ = 0;  ///< next tile to score

    std::vector<Rider> riders_;   ///< slot pool
    std::vector<size_t> free_;    ///< recycled slots
    std::vector<size_t> active_;  ///< riding slots (order not FIFO)
    // Per-tile scratch; capacity reused across steps.
    std::vector<size_t> cohort_;  ///< active slots scored this tile
    std::vector<float> qmat_;     ///< cohort queries, row-major
    std::vector<float> scores_;   ///< cohort x tile dot products
  };

 private:
  int dim_;
  std::vector<float> data_;
  std::vector<float> norms_;    // ||row||^2 cache for the batched scorer
  std::vector<u8> tombstones_;  // 1 = removed from results
  size_t deleted_ = 0;
};

/// Squared Euclidean distance (the common metric of all indexes).
float SquaredL2Distance(const float* a, const float* b, int dim);

}  // namespace ann
}  // namespace deepjoin

#endif  // DEEPJOIN_ANN_VECTOR_INDEX_H_
