// Common interface for the vector indexes (flat / HNSW / IVFPQ) plus the
// exact flat index. Paper §3.3: column embeddings are indexed offline and
// searched under Euclidean distance; HNSW is the default, with IVFPQ for
// very large repositories.
#ifndef DEEPJOIN_ANN_VECTOR_INDEX_H_
#define DEEPJOIN_ANN_VECTOR_INDEX_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ann/vector_store.h"
#include "util/binary_io.h"
#include "util/common.h"
#include "util/status.h"
#include "util/top_k.h"

namespace deepjoin {
namespace ann {

class FlatIndex;

/// A search hit: squared L2 distance and the vector's insertion id.
struct Neighbor {
  float dist;
  u32 id;
  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;
  }
  friend bool operator>(const Neighbor& a, const Neighbor& b) { return b < a; }
};

/// Per-query search knobs. Zero means "use the index's configured
/// default". Overrides travel with the call instead of mutating index
/// state, so concurrent searches with different settings never race on a
/// shared config (the old set_ef_search/set_nprobe mutators are gone).
struct AnnSearchParams {
  int ef_search = 0;  ///< HNSW layer-0 beam width; ignored by other indexes
  int nprobe = 0;     ///< IVFPQ coarse cells scanned; ignored by others
  /// Refinement reranking for quantized (SQ8) indexes: 0 = off; r > 0
  /// over-fetches k*r candidates with quantized distances, then reranks
  /// them with exact float distances when the index carries a float
  /// refinement store (ignored otherwise). Per-call — no index mutation.
  int refine_factor = 0;
};

class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// Adds one vector; ids are assigned sequentially from 0.
  virtual void Add(const float* vec) = 0;

  /// Tombstones `id`: it stops appearing in results but keeps its id (no
  /// renumbering; storage is reclaimed by a rebuild/compaction). Indexes
  /// without delete support return FailedPrecondition; ids never assigned
  /// return NotFound; deleting a tombstone is OK (idempotent).
  [[nodiscard]] virtual Status Remove(u32 id) {
    (void)id;
    return Status::FailedPrecondition(std::string(name()) +
                                      " does not support Remove");
  }
  virtual bool IsDeleted(u32 id) const {
    (void)id;
    return false;
  }
  /// Number of tombstoned ids (live size == size() - deleted_count()).
  virtual size_t deleted_count() const { return 0; }

  /// Bulk add of n row-major vectors. Virtual so quantizing backends can
  /// treat the batch as a unit (an SQ8 store trains its per-dim lo/scale
  /// on the first batch and encodes it in one block); the default loops
  /// Add per row.
  virtual void AddBatch(const float* data, size_t n) {
    for (size_t i = 0; i < n; ++i) Add(data + i * static_cast<size_t>(dim()));
  }

  /// Serializes this index into an already-Open()ed writer (the payload
  /// after the kDjIndexMagic header, which SaveIndexFile in index_io.h
  /// writes). options.storage can convert the representation at save time
  /// (float -> SQ8 trains quantization; SQ8 -> float requires a float
  /// refinement store). Backends without persistence keep the default.
  [[nodiscard]] virtual Status Save(BinaryWriter& writer,
                                    const SaveOptions& options) const {
    (void)writer;
    (void)options;
    return Status::FailedPrecondition(std::string(name()) +
                                      " does not support Save");
  }

  /// k nearest neighbours of `query` under (squared) L2, nearest first.
  virtual std::vector<Neighbor> Search(const float* query, size_t k,
                                       const AnnSearchParams& params)
      const = 0;

  /// Convenience overload: search with the index's configured defaults.
  std::vector<Neighbor> Search(const float* query, size_t k) const {
    return Search(query, k, AnnSearchParams{});
  }

  /// Writes the k nearest into `*out` (cleared first), nearest first. The
  /// hot query path (EmbeddingSearcher::SearchInto) calls this so indexes
  /// with an allocation-free fast path can reuse the caller's buffer
  /// (HnswIndex overrides this with a DJ_NOALLOC implementation); the
  /// default just forwards to Search.
  virtual void SearchInto(const float* query, size_t k,
                          const AnnSearchParams& params,
                          std::vector<Neighbor>* out) const {
    *out = Search(query, k, params);
  }

  /// Scores `nq` queries (row-major, nq x dim) in one call, writing each
  /// query's k nearest into outs[q] (cleared first), nearest first. The
  /// default loops SearchInto per query; FlatIndex overrides it with a
  /// blocked-SGEMM scorer that streams the corpus once per *batch* instead
  /// of once per query — the amortisation the serving layer's adaptive
  /// batcher exists to exploit (DESIGN.md §13).
  virtual void SearchBatchInto(const float* queries, size_t nq, size_t k,
                               const AnnSearchParams& params,
                               std::vector<Neighbor>* outs) const {
    for (size_t q = 0; q < nq; ++q) {
      SearchInto(queries + q * static_cast<size_t>(dim()), k, params,
                 &outs[q]);
    }
  }

  virtual size_t size() const = 0;
  virtual int dim() const = 0;

  /// Human-readable name for bench output.
  virtual const char* name() const = 0;

  /// Downcast hook for callers that can exploit flat-specific machinery
  /// without RTTI — the serving layer uses it to open a cooperative
  /// SharedScan session. nullptr for every other backend.
  virtual const FlatIndex* AsFlat() const { return nullptr; }
};

/// Exact brute-force index; ground truth for recall tests and the fallback
/// for tiny repositories.
class FlatIndex : public VectorIndex {
 public:
  /// Empty mutable index over an owned store of the given representation
  /// (kFloat by default; kSq8 builds a quantized index directly — the
  /// first AddBatch trains the quantizer).
  explicit FlatIndex(int dim, StorageKind storage = StorageKind::kFloat);

  /// Wraps already-loaded stores (the OpenIndex path). `refine` may be
  /// null; `tombstones` must be store->size() long.
  FlatIndex(std::unique_ptr<VectorStore> store,
            std::unique_ptr<VectorStore> refine, std::vector<u8> tombstones,
            size_t deleted);

  using VectorIndex::Search;

  void Add(const float* vec) override;
  void AddBatch(const float* data, size_t n) override;
  [[nodiscard]] Status Remove(u32 id) override {
    if (id >= tombstones_.size()) {
      return Status::NotFound("flat Remove: id " + std::to_string(id) +
                              " never assigned");
    }
    if (tombstones_[id] == 0) {
      tombstones_[id] = 1;
      ++deleted_;
    }
    return Status::OK();
  }
  bool IsDeleted(u32 id) const override {
    return id < tombstones_.size() && tombstones_[id] != 0;
  }
  size_t deleted_count() const override { return deleted_; }
  std::vector<Neighbor> Search(const float* query, size_t k,
                               const AnnSearchParams& params) const override;
  /// Batched exact scan: one blocked SGEMM per corpus tile computes every
  /// query·row dot product, distances recombine from cached row norms
  /// (||q-x||^2 = ||q||^2 - 2 q·x + ||x||^2). Turns the memory-bound
  /// per-query scan (one full corpus stream per query) into a
  /// compute-bound pass (one corpus stream per batch).
  void SearchBatchInto(const float* queries, size_t nq, size_t k,
                       const AnnSearchParams& params,
                       std::vector<Neighbor>* outs) const override;
  size_t size() const override { return store_->size(); }
  int dim() const override { return store_->dim(); }
  const char* name() const override { return "flat"; }
  const FlatIndex* AsFlat() const override { return this; }

  /// The row storage being searched (float or SQ8, owned or mapped).
  const VectorStore& store() const { return *store_; }
  /// Exact float rows for refine_factor reranking, or nullptr.
  const VectorStore* refine_store() const { return refine_.get(); }

  [[nodiscard]] Status Save(BinaryWriter& writer,
                            const SaveOptions& options) const override;
  /// Loads the payload that Save wrote, after index_io has consumed the
  /// DJIX magic/version/kind header.
  static Result<std::unique_ptr<FlatIndex>> LoadPayload(
      BinaryReader& reader, const OpenOptions& options);

  /// Raw float row access; only valid for float-representation stores
  /// (DJ_CHECKs that the store exposes raw floats).
  const float* vector(u32 id) const {
    const float* base = store_->float_base();
    DJ_CHECK(base != nullptr);
    return base + static_cast<size_t>(id) * static_cast<size_t>(dim());
  }

  /// Cooperative shared scan (DESIGN.md §13): the corpus is scored one
  /// tile at a time around a circular cursor; a query boards between any
  /// two tiles, rides exactly one wrap (every tile once), and completes.
  /// An arrival therefore waits at most one tile (~sub-millisecond)
  /// instead of a full in-flight corpus pass — this is what keeps the
  /// serving layer's low-rate tail near the single-query floor — while
  /// every rider on a tile shares its single corpus stream exactly like
  /// SearchBatchInto (scalar row-major below the GEMM cutover, tiled
  /// SGEMM at or above it). Results match Search(): every live row is
  /// scored exactly once per rider.
  ///
  /// Single-owner (one dispatcher thread drives Board/Step/Harvest), and
  /// the same concurrency contract as Search: no concurrent structural
  /// mutation of the flat index. The row count is frozen at construction
  /// — rows added later are not scanned; start a new session instead.
  class SharedScan {
   public:
    explicit SharedScan(const FlatIndex* index);
    SharedScan(const SharedScan&) = delete;
    SharedScan& operator=(const SharedScan&) = delete;

    /// Boards one query (copied out) wanting `k` results; returns the
    /// rider's slot, valid until Harvest frees it. k == 0 or an empty
    /// corpus completes with no hits on the next Step.
    size_t Board(const float* query, size_t k);

    /// Scores the next tile for every active rider and appends the slots
    /// of riders that just completed their wrap to `*done` (not cleared).
    /// Returns how many completed; 0 with no riders is a no-op.
    size_t Step(std::vector<size_t>* done);

    /// Moves rider `slot`'s results (nearest first) into `*out` (cleared
    /// first) and recycles the slot. Call exactly once per done slot.
    void Harvest(size_t slot, std::vector<Neighbor>* out);

    size_t active() const { return active_.size(); }
    bool empty() const { return active_.empty(); }
    /// Tiles in one full wrap (0 for an empty corpus).
    size_t tiles() const { return tiles_; }

   private:
    struct Rider {
      std::vector<float> query;  ///< owned copy; capacity reused via slots
      float qnorm = 0.0f;        ///< ||q||^2 for the GEMM recombination
      std::optional<TopK> top;   ///< unset for k == 0 and after Harvest
      size_t tiles_left = 0;     ///< completes when this hits 0
    };

    const FlatIndex* const index_;
    const size_t rows_;  ///< frozen at construction (see class comment)
    const size_t tiles_;
    size_t cursor_ = 0;  ///< next tile to score

    std::vector<Rider> riders_;   ///< slot pool
    std::vector<size_t> free_;    ///< recycled slots
    std::vector<size_t> active_;  ///< riding slots (order not FIFO)
    // Per-tile scratch; capacity reused across steps.
    std::vector<size_t> cohort_;  ///< active slots scored this tile
    std::vector<float> qmat_;     ///< cohort queries, row-major
    std::vector<float> scores_;   ///< cohort x tile dot products
  };

 private:
  std::unique_ptr<VectorStore> store_;   // searched representation
  std::unique_ptr<VectorStore> refine_;  // exact floats for reranking
  std::vector<u8> tombstones_;           // 1 = removed from results
  size_t deleted_ = 0;
};

/// Squared Euclidean distance (the common metric of all indexes).
float SquaredL2Distance(const float* a, const float* b, int dim);

/// Reranks the candidates in `*out` (quantized distances) with exact
/// distances from `exact`, keeping the k nearest. The refine_factor
/// post-pass shared by flat and HNSW search.
void RefineResults(const VectorStore& exact, const float* query, size_t k,
                   std::vector<Neighbor>* out);

}  // namespace ann
}  // namespace deepjoin

#endif  // DEEPJOIN_ANN_VECTOR_INDEX_H_
