#include "ann/vector_index.h"

#include <algorithm>

#include "util/top_k.h"

namespace deepjoin {
namespace ann {

float SquaredL2Distance(const float* a, const float* b, int dim) {
  double s = 0.0;
  for (int i = 0; i < dim; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return static_cast<float>(s);
}

std::vector<Neighbor> FlatIndex::Search(const float* query, size_t k) const {
  const size_t n = size();
  if (n == 0 || k == 0) return {};
  TopK top(k);
  for (size_t i = 0; i < n; ++i) {
    const float d = SquaredL2Distance(query, vector(static_cast<u32>(i)),
                                      dim_);
    top.Push(-static_cast<double>(d), static_cast<u32>(i));
  }
  std::vector<Neighbor> out;
  for (const auto& s : top.Take()) {
    out.push_back(Neighbor{static_cast<float>(-s.score), s.id});
  }
  return out;
}

}  // namespace ann
}  // namespace deepjoin
