#include "ann/vector_index.h"

#include <algorithm>

#include "util/kernels.h"
#include "util/top_k.h"
#include "util/trace.h"

namespace deepjoin {
namespace ann {

float SquaredL2Distance(const float* a, const float* b, int dim) {
  // Single-precision kernel accumulation (documented change: this used to
  // accumulate in double). Deterministic per kernel tier; see
  // util/kernels.h for the reduction order.
  return kern::SquaredL2(a, b, dim);
}

std::vector<Neighbor> FlatIndex::Search(const float* query, size_t k,
                                        const AnnSearchParams& params) const {
  (void)params;  // exact scan has no tunables
  DJ_TRACE_SPAN("flat.search");
  const size_t n = size();
  if (n == 0 || k == 0) return {};
  trace::Count("flat.dist_evals", n);
  TopK top(k);
  for (size_t i = 0; i < n; ++i) {
    if (IsDeleted(static_cast<u32>(i))) continue;  // tombstoned
    const float d = SquaredL2Distance(query, vector(static_cast<u32>(i)),
                                      dim_);
    top.Push(-static_cast<double>(d), static_cast<u32>(i));
  }
  std::vector<Neighbor> out;
  for (const auto& s : top.Take()) {
    out.push_back(Neighbor{static_cast<float>(-s.score), s.id});
  }
  return out;
}

}  // namespace ann
}  // namespace deepjoin
