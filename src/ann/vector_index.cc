#include "ann/vector_index.h"

#include <algorithm>

#include "util/kernels.h"
#include "util/top_k.h"
#include "util/trace.h"

namespace deepjoin {
namespace ann {

float SquaredL2Distance(const float* a, const float* b, int dim) {
  // Single-precision kernel accumulation (documented change: this used to
  // accumulate in double). Deterministic per kernel tier; see
  // util/kernels.h for the reduction order.
  return kern::SquaredL2(a, b, dim);
}

void RefineResults(const VectorStore& exact, const float* query, size_t k,
                   std::vector<Neighbor>* out) {
  for (Neighbor& nb : *out) {
    nb.dist = exact.Distance(query, nb.id);
  }
  std::sort(out->begin(), out->end());
  // Shrink via erase: shrinking never reallocates (resize would trip the
  // growth-call check for no reason).
  if (out->size() > k) {
    out->erase(out->begin() + static_cast<long>(k), out->end());
  }
}

FlatIndex::FlatIndex(int dim, StorageKind storage) {
  DJ_CHECK(dim > 0);
  if (storage == StorageKind::kSq8) {
    store_ = std::make_unique<Sq8Store>(dim);
  } else {
    store_ = std::make_unique<FloatStore>(dim);
  }
}

FlatIndex::FlatIndex(std::unique_ptr<VectorStore> store,
                     std::unique_ptr<VectorStore> refine,
                     std::vector<u8> tombstones, size_t deleted)
    : store_(std::move(store)),
      refine_(std::move(refine)),
      tombstones_(std::move(tombstones)),
      deleted_(deleted) {
  DJ_CHECK(store_ != nullptr);
  DJ_CHECK(tombstones_.size() == store_->size());
}

void FlatIndex::Add(const float* vec) {
  DJ_CHECK_MSG(store_->AppendRow(vec).ok(),
               "flat Add on a read-only (mapped) store");
  if (refine_ != nullptr) {
    DJ_CHECK_MSG(refine_->AppendRow(vec).ok(),
                 "flat Add on a read-only refinement store");
  }
  tombstones_.push_back(0);
}

void FlatIndex::AddBatch(const float* data, size_t n) {
  DJ_CHECK_MSG(store_->AppendRows(data, n).ok(),
               "flat AddBatch on a read-only (mapped) store");
  if (refine_ != nullptr) {
    DJ_CHECK_MSG(refine_->AppendRows(data, n).ok(),
                 "flat AddBatch on a read-only refinement store");
  }
  tombstones_.insert(tombstones_.end(), n, 0);
}

std::vector<Neighbor> FlatIndex::Search(const float* query, size_t k,
                                        const AnnSearchParams& params) const {
  DJ_TRACE_SPAN("flat.search");
  const size_t n = size();
  if (n == 0 || k == 0) return {};
  trace::Count("flat.dist_evals", n);
  const bool refine =
      params.refine_factor > 0 && refine_ != nullptr &&
      store_->kind() != StorageKind::kFloat;
  const size_t fetch =
      refine ? k * static_cast<size_t>(params.refine_factor) : k;
  TopK top(fetch);
  for (size_t i = 0; i < n; ++i) {
    if (IsDeleted(static_cast<u32>(i))) continue;  // tombstoned
    const float d = store_->Distance(query, static_cast<u32>(i));
    top.Push(-static_cast<double>(d), static_cast<u32>(i));
  }
  std::vector<Neighbor> out;
  for (const auto& s : top.Take()) {
    out.push_back(Neighbor{static_cast<float>(-s.score), s.id});
  }
  if (refine) RefineResults(*refine_, query, k, &out);
  return out;
}

namespace {

// Corpus rows per SGEMM tile. Small enough that one tile of scores
// (nq x kScoreTileRows floats) plus the tile's rows stay cache-resident,
// large enough that the kernel amortises its loop overhead; throughput is
// flat from ~512 to ~64k rows on the machines we measured, so the exact
// value is not load-bearing.
constexpr size_t kScoreTileRows = 2048;

// Below this many queries the batch takes the scalar per-query scan: the
// packed SGEMM's B-tile packing costs a corpus pass by itself, so at m=1-3
// it LOSES to nq plain passes — measured ~4x worse at m=1. The GEMM only
// pays off once its single corpus stream is amortised over enough queries.
constexpr size_t kBatchGemmMinQueries = 4;

}  // namespace

void FlatIndex::SearchBatchInto(const float* queries, size_t nq, size_t k,
                                const AnnSearchParams& params,
                                std::vector<Neighbor>* outs) const {
  for (size_t q = 0; q < nq; ++q) outs[q].clear();
  const size_t n = size();
  if (n == 0 || k == 0 || nq == 0) return;
  DJ_TRACE_SPAN("flat.search_batch");
  trace::Count("flat.dist_evals", n * nq);
  const size_t d = static_cast<size_t>(dim());
  const bool refine =
      params.refine_factor > 0 && refine_ != nullptr &&
      store_->kind() != StorageKind::kFloat;
  const size_t fetch =
      refine ? k * static_cast<size_t>(params.refine_factor) : k;
  // Lazily-validated (mapped) stores check every touched page once up
  // front; the per-row fast paths below then read raw pointers.
  store_->TouchRows(0, n);
  const float* base = store_->float_base();
  const float* norms = store_->norms_base();
  if (nq < kBatchGemmMinQueries || base == nullptr || norms == nullptr) {
    // Row-major order: each corpus row is loaded once and scored against
    // every query while it sits in L1, so a burst of 2-3 queries costs one
    // bandwidth-bound corpus pass, not nq serial passes — this is what
    // keeps the serving layer's low-rate tail near the single-query floor.
    // Non-float representations (SQ8) score through the store's fused
    // kernel; the codes row equally stays cache-resident across queries.
    std::vector<TopK> tops;
    tops.reserve(nq);
    for (size_t q = 0; q < nq; ++q) tops.emplace_back(fetch);
    for (size_t i = 0; i < n; ++i) {
      if (IsDeleted(static_cast<u32>(i))) continue;  // tombstoned
      const float* const row = base != nullptr ? base + i * d : nullptr;
      for (size_t q = 0; q < nq; ++q) {
        const float dist =
            row != nullptr
                ? kern::SquaredL2(queries + q * d, row, dim())
                : store_->Distance(queries + q * d, static_cast<u32>(i));
        tops[q].Push(-static_cast<double>(dist), static_cast<u32>(i));
      }
    }
    for (size_t q = 0; q < nq; ++q) {
      for (const auto& s : tops[q].Take()) {
        outs[q].push_back(Neighbor{static_cast<float>(-s.score), s.id});
      }
      if (refine) RefineResults(*refine_, queries + q * d, k, &outs[q]);
    }
    return;
  }

  // scores[q * tile_rows + j] = q_q · x_{c+j} for the current tile. The
  // buffer is reused across calls; it only grows when a caller raises the
  // batch size.
  thread_local std::vector<float> scores;
  if (scores.size() < nq * kScoreTileRows) {
    scores.resize(nq * kScoreTileRows);  // dj_alloc: allow(alloc)
  }
  thread_local std::vector<float> qnorms;
  if (qnorms.size() < nq) qnorms.resize(nq);  // dj_alloc: allow(alloc)
  for (size_t q = 0; q < nq; ++q) {
    qnorms[q] = kern::Dot(queries + q * d, queries + q * d,
                          static_cast<int>(d));
  }
  std::vector<TopK> tops;
  tops.reserve(nq);
  for (size_t q = 0; q < nq; ++q) tops.emplace_back(fetch);
  for (size_t c = 0; c < n; c += kScoreTileRows) {
    const size_t rows = std::min(kScoreTileRows, n - c);
    // SgemmNT accumulates (C += A @ B^T); the tile buffer is reused across
    // tiles and calls, so it must be zeroed first.
    std::fill(scores.begin(), scores.begin() + nq * kScoreTileRows, 0.0f);
    // C (nq x rows) = Q (nq x d) * X_tile^T (d x rows).
    kern::SgemmNT(static_cast<int>(nq), static_cast<int>(rows),
                  static_cast<int>(d), queries, static_cast<int>(d),
                  base + c * d, static_cast<int>(d), scores.data(),
                  static_cast<int>(kScoreTileRows));
    for (size_t q = 0; q < nq; ++q) {
      const float* row = scores.data() + q * kScoreTileRows;
      const float qnorm = qnorms[q];
      for (size_t j = 0; j < rows; ++j) {
        const u32 id = static_cast<u32>(c + j);
        if (IsDeleted(id)) continue;  // tombstoned
        const float dist = qnorm + norms[c + j] - 2.0f * row[j];
        tops[q].Push(-static_cast<double>(dist), id);
      }
    }
  }
  for (size_t q = 0; q < nq; ++q) {
    for (const auto& s : tops[q].Take()) {
      outs[q].push_back(Neighbor{static_cast<float>(-s.score), s.id});
    }
    if (refine) RefineResults(*refine_, queries + q * d, k, &outs[q]);
  }
}

// ---- Persistence (the payload behind index_io's DJIX header) ----
//
// flat payload := primary_kind:u32 has_refine:u32 deleted:u32[]
//                 store_payload [refine_store_payload]

Status FlatIndex::Save(BinaryWriter& writer,
                       const SaveOptions& options) const {
  const StorageKind want = options.storage == StorageKind::kAuto
                               ? store_->kind()
                               : options.storage;
  const VectorStore* primary = store_.get();
  bool convert_to_sq8 = false;
  const VectorStore* refine = nullptr;
  if (want == store_->kind()) {
    if (want == StorageKind::kSq8) refine = refine_.get();
  } else if (want == StorageKind::kSq8) {
    // float -> SQ8: train quantization over the full corpus at save time.
    convert_to_sq8 = true;
    if (options.keep_float_refine) refine = store_.get();
  } else {
    // SQ8 -> float is only lossless if the exact rows were kept.
    if (refine_ == nullptr || refine_->kind() != StorageKind::kFloat) {
      return Status::FailedPrecondition(
          "cannot save an SQ8 flat index as float without a float "
          "refinement store (save with keep_float_refine to retain one)");
    }
    primary = refine_.get();
  }
  writer.WriteU32(static_cast<u32>(want));
  writer.WriteU32(refine != nullptr ? 1 : 0);
  std::vector<u32> deleted_ids;
  for (size_t i = 0; i < tombstones_.size(); ++i) {
    if (tombstones_[i] != 0) deleted_ids.push_back(static_cast<u32>(i));
  }
  writer.WriteU32Array(deleted_ids.data(), deleted_ids.size());
  if (convert_to_sq8) {
    const float* base = store_->float_base();
    DJ_CHECK(base != nullptr);
    const size_t d = static_cast<size_t>(dim());
    DJ_RETURN_IF_ERROR(Sq8Store::SaveFromRows(
        writer, dim(), size(),
        [base, d](u64 i) { return base + i * d; }));
  } else {
    DJ_RETURN_IF_ERROR(primary->Save(writer));
  }
  if (refine != nullptr) DJ_RETURN_IF_ERROR(refine->Save(writer));
  return writer.status();
}

Result<std::unique_ptr<FlatIndex>> FlatIndex::LoadPayload(
    BinaryReader& reader, const OpenOptions& options) {
  u32 kind_raw = 0, has_refine = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU32(&kind_raw));
  DJ_RETURN_IF_ERROR(reader.ReadU32(&has_refine));
  std::vector<u32> deleted_ids;
  DJ_RETURN_IF_ERROR(reader.ReadU32Array(&deleted_ids));
  if (kind_raw != static_cast<u32>(StorageKind::kFloat) &&
      kind_raw != static_cast<u32>(StorageKind::kSq8)) {
    return Status::DataLoss("flat index: unknown primary storage kind " +
                            std::to_string(kind_raw));
  }
  if (has_refine > 1) {
    return Status::DataLoss("flat index: corrupt has_refine flag");
  }
  const StorageKind primary_kind = static_cast<StorageKind>(kind_raw);
  const StorageKind want = options.storage == StorageKind::kAuto
                               ? primary_kind
                               : options.storage;
  std::unique_ptr<VectorStore> store, refine;
  if (want == primary_kind) {
    auto store_r = LoadVectorStore(reader, options);
    if (!store_r.ok()) return store_r.status();
    store = std::move(store_r).value();
    if (has_refine != 0) {
      if (primary_kind != StorageKind::kSq8) {
        return Status::DataLoss(
            "flat index: float primary with refinement payload");
      }
      auto refine_r = LoadVectorStore(reader, options);
      if (!refine_r.ok()) return refine_r.status();
      refine = std::move(refine_r).value();
    }
  } else if (want == StorageKind::kFloat) {
    // SQ8 file opened as float: only possible via the float refinement
    // payload (dequantizing codes would silently change every distance).
    if (has_refine == 0) {
      return Status::FailedPrecondition(
          "file holds SQ8 only; no float payload to open (saved without "
          "keep_float_refine)");
    }
    auto skipped = SkipVectorStore(reader);
    if (!skipped.ok()) return skipped.status();
    auto store_r = LoadVectorStore(reader, options);
    if (!store_r.ok()) return store_r.status();
    store = std::move(store_r).value();
  } else {
    return Status::FailedPrecondition(
        "file holds float rows; quantize at save time "
        "(SaveOptions.storage = kSq8), not at open");
  }
  if (refine != nullptr) {
    if (refine->kind() != StorageKind::kFloat ||
        refine->dim() != store->dim() || refine->size() != store->size()) {
      return Status::DataLoss(
          "flat index: refinement store does not match primary");
    }
  }
  std::vector<u8> tombstones(store->size(), 0);
  size_t deleted = 0;
  for (const u32 id : deleted_ids) {
    if (id >= tombstones.size()) {
      return Status::DataLoss("flat index: deleted id " + std::to_string(id) +
                              " out of range");
    }
    if (tombstones[id] == 0) {
      tombstones[id] = 1;
      ++deleted;
    }
  }
  if (options.map == MapMode::kOwned) {
    // Owned opens stay mutable (legacy load-then-add semantics): deep-copy
    // the section-backed stores into appendable ones.
    store = store->CloneOwned();
    if (refine != nullptr) refine = refine->CloneOwned();
  }
  return std::make_unique<FlatIndex>(std::move(store), std::move(refine),
                                     std::move(tombstones), deleted);
}

// ---- SharedScan: the cooperative tile-granular scan (DESIGN.md §13) ----

FlatIndex::SharedScan::SharedScan(const FlatIndex* index)
    : index_(index),
      rows_(index->size()),
      tiles_((rows_ + kScoreTileRows - 1) / kScoreTileRows) {}

size_t FlatIndex::SharedScan::Board(const float* query, size_t k) {
  size_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = riders_.size();
    riders_.emplace_back();
  }
  Rider& r = riders_[slot];
  const size_t d = static_cast<size_t>(index_->dim());
  r.query.assign(query, query + d);
  r.qnorm = kern::Dot(query, query, index_->dim());
  if (k > 0) {
    r.top.emplace(k);
  } else {
    r.top.reset();
  }
  // k == 0 wants nothing; an empty corpus has nothing. Either way the
  // rider skips scoring and completes on the next Step.
  r.tiles_left = (k == 0) ? 0 : tiles_;
  active_.push_back(slot);
  return slot;
}

size_t FlatIndex::SharedScan::Step(std::vector<size_t>* done) {
  if (active_.empty()) return 0;
  // Cohort: riders with tiles still to ride (k==0 / empty-corpus riders
  // fall straight through to the completion sweep).
  cohort_.clear();
  for (const size_t slot : active_) {
    if (riders_[slot].tiles_left > 0) cohort_.push_back(slot);
  }
  if (!cohort_.empty()) {
    const size_t c = cursor_ * kScoreTileRows;
    const size_t rows = std::min(kScoreTileRows, rows_ - c);
    const size_t d = static_cast<size_t>(index_->dim());
    const size_t nq = cohort_.size();
    trace::Count("flat.dist_evals", rows * nq);
    // Lazily-validated (mapped) stores check this tile's pages once.
    index_->store_->TouchRows(c, rows);
    const float* base = index_->store_->float_base();
    const float* norms = index_->store_->norms_base();
    if (nq < kBatchGemmMinQueries || base == nullptr || norms == nullptr) {
      // Row-major shared pass, same as the small-batch arm of
      // SearchBatchInto: each tile row is loaded once and scored against
      // the whole cohort (bit-identical to the single-query Search).
      // Non-float stores (SQ8) go through the fused quantized kernel.
      for (size_t j = 0; j < rows; ++j) {
        const u32 id = static_cast<u32>(c + j);
        if (index_->IsDeleted(id)) continue;  // tombstoned
        const float* const row = base != nullptr ? base + (c + j) * d
                                                 : nullptr;
        for (const size_t slot : cohort_) {
          Rider& r = riders_[slot];
          const float dist =
              row != nullptr
                  ? kern::SquaredL2(r.query.data(), row, index_->dim())
                  : index_->store_->Distance(r.query.data(), id);
          r.top->Push(-static_cast<double>(dist), id);
        }
      }
    } else {
      // Tiled-SGEMM arm: gather the cohort's queries into a contiguous
      // matrix and recombine distances from the cached row norms, exactly
      // like the batched scorer above.
      if (qmat_.size() < nq * d) qmat_.resize(nq * d);
      if (scores_.size() < nq * kScoreTileRows) {
        scores_.resize(nq * kScoreTileRows);
      }
      for (size_t q = 0; q < nq; ++q) {
        const Rider& r = riders_[cohort_[q]];
        std::copy(r.query.begin(), r.query.end(), qmat_.begin() + q * d);
      }
      // SgemmNT accumulates (C += A @ B^T); the reused tile buffer must
      // be zeroed first.
      std::fill(scores_.begin(), scores_.begin() + nq * kScoreTileRows,
                0.0f);
      kern::SgemmNT(static_cast<int>(nq), static_cast<int>(rows),
                    static_cast<int>(d), qmat_.data(), static_cast<int>(d),
                    base + c * d, static_cast<int>(d),
                    scores_.data(), static_cast<int>(kScoreTileRows));
      for (size_t q = 0; q < nq; ++q) {
        Rider& r = riders_[cohort_[q]];
        const float* row = scores_.data() + q * kScoreTileRows;
        for (size_t j = 0; j < rows; ++j) {
          const u32 id = static_cast<u32>(c + j);
          if (index_->IsDeleted(id)) continue;  // tombstoned
          const float dist = r.qnorm + norms[c + j] - 2.0f * row[j];
          r.top->Push(-static_cast<double>(dist), id);
        }
      }
    }
    for (const size_t slot : cohort_) --riders_[slot].tiles_left;
    cursor_ = (cursor_ + 1) % tiles_;
  }
  // Completion sweep (swap-remove: completion order is not FIFO).
  size_t finished = 0;
  for (size_t i = 0; i < active_.size();) {
    const size_t slot = active_[i];
    if (riders_[slot].tiles_left == 0) {
      done->push_back(slot);
      ++finished;
      active_[i] = active_.back();
      active_.pop_back();
    } else {
      ++i;
    }
  }
  return finished;
}

void FlatIndex::SharedScan::Harvest(size_t slot, std::vector<Neighbor>* out) {
  out->clear();
  Rider& r = riders_[slot];
  if (r.top.has_value()) {
    for (const auto& s : r.top->Take()) {
      out->push_back(Neighbor{static_cast<float>(-s.score), s.id});
    }
    r.top.reset();
  }
  free_.push_back(slot);
}

}  // namespace ann
}  // namespace deepjoin
