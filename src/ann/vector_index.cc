#include "ann/vector_index.h"

#include <algorithm>

#include "util/kernels.h"
#include "util/top_k.h"
#include "util/trace.h"

namespace deepjoin {
namespace ann {

float SquaredL2Distance(const float* a, const float* b, int dim) {
  // Single-precision kernel accumulation (documented change: this used to
  // accumulate in double). Deterministic per kernel tier; see
  // util/kernels.h for the reduction order.
  return kern::SquaredL2(a, b, dim);
}

void FlatIndex::Add(const float* vec) {
  data_.insert(data_.end(), vec, vec + dim_);
  norms_.push_back(kern::Dot(vec, vec, dim_));
  tombstones_.push_back(0);
}

std::vector<Neighbor> FlatIndex::Search(const float* query, size_t k,
                                        const AnnSearchParams& params) const {
  (void)params;  // exact scan has no tunables
  DJ_TRACE_SPAN("flat.search");
  const size_t n = size();
  if (n == 0 || k == 0) return {};
  trace::Count("flat.dist_evals", n);
  TopK top(k);
  for (size_t i = 0; i < n; ++i) {
    if (IsDeleted(static_cast<u32>(i))) continue;  // tombstoned
    const float d = SquaredL2Distance(query, vector(static_cast<u32>(i)),
                                      dim_);
    top.Push(-static_cast<double>(d), static_cast<u32>(i));
  }
  std::vector<Neighbor> out;
  for (const auto& s : top.Take()) {
    out.push_back(Neighbor{static_cast<float>(-s.score), s.id});
  }
  return out;
}

namespace {

// Corpus rows per SGEMM tile. Small enough that one tile of scores
// (nq x kScoreTileRows floats) plus the tile's rows stay cache-resident,
// large enough that the kernel amortises its loop overhead; throughput is
// flat from ~512 to ~64k rows on the machines we measured, so the exact
// value is not load-bearing.
constexpr size_t kScoreTileRows = 2048;

// Below this many queries the batch takes the scalar per-query scan: the
// packed SGEMM's B-tile packing costs a corpus pass by itself, so at m=1-3
// it LOSES to nq plain passes — measured ~4x worse at m=1. The GEMM only
// pays off once its single corpus stream is amortised over enough queries.
constexpr size_t kBatchGemmMinQueries = 4;

}  // namespace

void FlatIndex::SearchBatchInto(const float* queries, size_t nq, size_t k,
                                const AnnSearchParams& params,
                                std::vector<Neighbor>* outs) const {
  (void)params;  // exact scan has no tunables
  for (size_t q = 0; q < nq; ++q) outs[q].clear();
  const size_t n = size();
  if (n == 0 || k == 0 || nq == 0) return;
  DJ_TRACE_SPAN("flat.search_batch");
  trace::Count("flat.dist_evals", n * nq);
  const size_t d = static_cast<size_t>(dim_);
  if (nq < kBatchGemmMinQueries) {
    // Row-major order: each corpus row is loaded once and scored against
    // every query while it sits in L1, so a burst of 2-3 queries costs one
    // bandwidth-bound corpus pass, not nq serial passes — this is what
    // keeps the serving layer's low-rate tail near the single-query floor.
    std::vector<TopK> tops;
    tops.reserve(nq);
    for (size_t q = 0; q < nq; ++q) tops.emplace_back(k);
    for (size_t i = 0; i < n; ++i) {
      if (IsDeleted(static_cast<u32>(i))) continue;  // tombstoned
      const float* const row = vector(static_cast<u32>(i));
      for (size_t q = 0; q < nq; ++q) {
        const float dist = kern::SquaredL2(queries + q * d, row, dim_);
        tops[q].Push(-static_cast<double>(dist), static_cast<u32>(i));
      }
    }
    for (size_t q = 0; q < nq; ++q) {
      for (const auto& s : tops[q].Take()) {
        outs[q].push_back(Neighbor{static_cast<float>(-s.score), s.id});
      }
    }
    return;
  }

  // scores[q * tile_rows + j] = q_q · x_{c+j} for the current tile. The
  // buffer is reused across calls; it only grows when a caller raises the
  // batch size.
  thread_local std::vector<float> scores;
  if (scores.size() < nq * kScoreTileRows) {
    scores.resize(nq * kScoreTileRows);  // dj_alloc: allow(alloc)
  }
  thread_local std::vector<float> qnorms;
  if (qnorms.size() < nq) qnorms.resize(nq);  // dj_alloc: allow(alloc)
  for (size_t q = 0; q < nq; ++q) {
    qnorms[q] = kern::Dot(queries + q * d, queries + q * d,
                          static_cast<int>(d));
  }
  std::vector<TopK> tops;
  tops.reserve(nq);
  for (size_t q = 0; q < nq; ++q) tops.emplace_back(k);
  for (size_t c = 0; c < n; c += kScoreTileRows) {
    const size_t rows = std::min(kScoreTileRows, n - c);
    // SgemmNT accumulates (C += A @ B^T); the tile buffer is reused across
    // tiles and calls, so it must be zeroed first.
    std::fill(scores.begin(), scores.begin() + nq * kScoreTileRows, 0.0f);
    // C (nq x rows) = Q (nq x d) * X_tile^T (d x rows).
    kern::SgemmNT(static_cast<int>(nq), static_cast<int>(rows),
                  static_cast<int>(d), queries, static_cast<int>(d),
                  data_.data() + c * d, static_cast<int>(d), scores.data(),
                  static_cast<int>(kScoreTileRows));
    for (size_t q = 0; q < nq; ++q) {
      const float* row = scores.data() + q * kScoreTileRows;
      const float qnorm = qnorms[q];
      for (size_t j = 0; j < rows; ++j) {
        const u32 id = static_cast<u32>(c + j);
        if (IsDeleted(id)) continue;  // tombstoned
        const float dist = qnorm + norms_[c + j] - 2.0f * row[j];
        tops[q].Push(-static_cast<double>(dist), id);
      }
    }
  }
  for (size_t q = 0; q < nq; ++q) {
    for (const auto& s : tops[q].Take()) {
      outs[q].push_back(Neighbor{static_cast<float>(-s.score), s.id});
    }
  }
}

// ---- SharedScan: the cooperative tile-granular scan (DESIGN.md §13) ----

FlatIndex::SharedScan::SharedScan(const FlatIndex* index)
    : index_(index),
      rows_(index->size()),
      tiles_((rows_ + kScoreTileRows - 1) / kScoreTileRows) {}

size_t FlatIndex::SharedScan::Board(const float* query, size_t k) {
  size_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = riders_.size();
    riders_.emplace_back();
  }
  Rider& r = riders_[slot];
  const size_t d = static_cast<size_t>(index_->dim_);
  r.query.assign(query, query + d);
  r.qnorm = kern::Dot(query, query, index_->dim_);
  if (k > 0) {
    r.top.emplace(k);
  } else {
    r.top.reset();
  }
  // k == 0 wants nothing; an empty corpus has nothing. Either way the
  // rider skips scoring and completes on the next Step.
  r.tiles_left = (k == 0) ? 0 : tiles_;
  active_.push_back(slot);
  return slot;
}

size_t FlatIndex::SharedScan::Step(std::vector<size_t>* done) {
  if (active_.empty()) return 0;
  // Cohort: riders with tiles still to ride (k==0 / empty-corpus riders
  // fall straight through to the completion sweep).
  cohort_.clear();
  for (const size_t slot : active_) {
    if (riders_[slot].tiles_left > 0) cohort_.push_back(slot);
  }
  if (!cohort_.empty()) {
    const size_t c = cursor_ * kScoreTileRows;
    const size_t rows = std::min(kScoreTileRows, rows_ - c);
    const size_t d = static_cast<size_t>(index_->dim_);
    const size_t nq = cohort_.size();
    trace::Count("flat.dist_evals", rows * nq);
    if (nq < kBatchGemmMinQueries) {
      // Row-major shared pass, same as the small-batch arm of
      // SearchBatchInto: each tile row is loaded once and scored against
      // the whole cohort (bit-identical to the single-query Search).
      for (size_t j = 0; j < rows; ++j) {
        const u32 id = static_cast<u32>(c + j);
        if (index_->IsDeleted(id)) continue;  // tombstoned
        const float* const row = index_->vector(id);
        for (const size_t slot : cohort_) {
          Rider& r = riders_[slot];
          const float dist =
              kern::SquaredL2(r.query.data(), row, index_->dim_);
          r.top->Push(-static_cast<double>(dist), id);
        }
      }
    } else {
      // Tiled-SGEMM arm: gather the cohort's queries into a contiguous
      // matrix and recombine distances from the cached row norms, exactly
      // like the batched scorer above.
      if (qmat_.size() < nq * d) qmat_.resize(nq * d);
      if (scores_.size() < nq * kScoreTileRows) {
        scores_.resize(nq * kScoreTileRows);
      }
      for (size_t q = 0; q < nq; ++q) {
        const Rider& r = riders_[cohort_[q]];
        std::copy(r.query.begin(), r.query.end(), qmat_.begin() + q * d);
      }
      // SgemmNT accumulates (C += A @ B^T); the reused tile buffer must
      // be zeroed first.
      std::fill(scores_.begin(), scores_.begin() + nq * kScoreTileRows,
                0.0f);
      kern::SgemmNT(static_cast<int>(nq), static_cast<int>(rows),
                    static_cast<int>(d), qmat_.data(), static_cast<int>(d),
                    index_->data_.data() + c * d, static_cast<int>(d),
                    scores_.data(), static_cast<int>(kScoreTileRows));
      for (size_t q = 0; q < nq; ++q) {
        Rider& r = riders_[cohort_[q]];
        const float* row = scores_.data() + q * kScoreTileRows;
        for (size_t j = 0; j < rows; ++j) {
          const u32 id = static_cast<u32>(c + j);
          if (index_->IsDeleted(id)) continue;  // tombstoned
          const float dist = r.qnorm + index_->norms_[c + j] - 2.0f * row[j];
          r.top->Push(-static_cast<double>(dist), id);
        }
      }
    }
    for (const size_t slot : cohort_) --riders_[slot].tiles_left;
    cursor_ = (cursor_ + 1) % tiles_;
  }
  // Completion sweep (swap-remove: completion order is not FIFO).
  size_t finished = 0;
  for (size_t i = 0; i < active_.size();) {
    const size_t slot = active_[i];
    if (riders_[slot].tiles_left == 0) {
      done->push_back(slot);
      ++finished;
      active_[i] = active_.back();
      active_.pop_back();
    } else {
      ++i;
    }
  }
  return finished;
}

void FlatIndex::SharedScan::Harvest(size_t slot, std::vector<Neighbor>* out) {
  out->clear();
  Rider& r = riders_[slot];
  if (r.top.has_value()) {
    for (const auto& s : r.top->Take()) {
      out->push_back(Neighbor{static_cast<float>(-s.score), s.id});
    }
    r.top.reset();
  }
  free_.push_back(slot);
}

}  // namespace ann
}  // namespace deepjoin
