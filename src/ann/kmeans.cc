#include "ann/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "text/fasttext.h"  // L2Distance
#include "util/kernels.h"

namespace deepjoin {
namespace ann {

namespace {

// Single-precision kernel distance (documented change: this used to
// accumulate in double).
float SquaredL2(const float* a, const float* b, int dim) {
  return kern::SquaredL2(a, b, dim);
}

}  // namespace

KMeansResult KMeans(const float* data, size_t n, int dim, int k,
                    int max_iters, Rng& rng) {
  DJ_CHECK(k > 0 && dim > 0 && n > 0);
  KMeansResult result;
  result.k = k;
  result.dim = dim;
  result.centroids.assign(static_cast<size_t>(k) * dim, 0.0f);
  result.assignments.assign(n, 0);

  // k-means++ seeding.
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  size_t first = rng.UniformU64(n);
  std::copy(data + first * dim, data + (first + 1) * dim,
            result.centroids.begin());
  for (int c = 1; c < k; ++c) {
    const float* prev = &result.centroids[static_cast<size_t>(c - 1) * dim];
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = SquaredL2(data + i * dim, prev, dim);
      min_dist[i] = std::min(min_dist[i], d);
      total += min_dist[i];
    }
    size_t chosen = 0;
    if (total > 0.0) {
      double target = rng.UniformDouble() * total;
      double acc = 0.0;
      for (size_t i = 0; i < n; ++i) {
        acc += min_dist[i];
        if (acc >= target) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.UniformU64(n);  // all points identical
    }
    std::copy(data + chosen * dim, data + (chosen + 1) * dim,
              result.centroids.begin() + static_cast<size_t>(c) * dim);
  }

  std::vector<double> sums(static_cast<size_t>(k) * dim);
  std::vector<size_t> counts(k);
  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      const float* v = data + i * dim;
      float best = std::numeric_limits<float>::max();
      u32 best_c = 0;
      for (int c = 0; c < k; ++c) {
        const float d =
            SquaredL2(v, &result.centroids[static_cast<size_t>(c) * dim], dim);
        if (d < best) {
          best = d;
          best_c = static_cast<u32>(c);
        }
      }
      if (result.assignments[i] != best_c) {
        result.assignments[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      const u32 c = result.assignments[i];
      ++counts[c];
      const float* v = data + i * dim;
      double* srow = &sums[static_cast<size_t>(c) * dim];
      for (int j = 0; j < dim; ++j) srow[j] += v[j];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed empty cluster at a random point.
        const size_t p = rng.UniformU64(n);
        std::copy(data + p * dim, data + (p + 1) * dim,
                  result.centroids.begin() + static_cast<size_t>(c) * dim);
        continue;
      }
      float* crow = &result.centroids[static_cast<size_t>(c) * dim];
      for (int j = 0; j < dim; ++j) {
        crow[j] = static_cast<float>(sums[static_cast<size_t>(c) * dim + j] /
                                     static_cast<double>(counts[c]));
      }
    }
  }
  return result;
}

u32 NearestCentroid(const KMeansResult& km, const float* vec) {
  float best = std::numeric_limits<float>::max();
  u32 best_c = 0;
  for (int c = 0; c < km.k; ++c) {
    const float d =
        SquaredL2(vec, &km.centroids[static_cast<size_t>(c) * km.dim], km.dim);
    if (d < best) {
      best = d;
      best_c = static_cast<u32>(c);
    }
  }
  return best_c;
}

}  // namespace ann
}  // namespace deepjoin
