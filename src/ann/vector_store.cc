#include "ann/vector_store.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/crc32c.h"
#include "util/kernels.h"

namespace deepjoin {
namespace ann {

namespace {

// Sanity ceiling for on-disk dims; anything larger is corruption, not a
// real embedding width.
constexpr i32 kMaxStoreDim = 1 << 20;

Status CheckedPayloadBytes(u64 n, int dim, u64 elem_bytes, u64* out) {
  const u64 per_row = static_cast<u64>(dim) * elem_bytes;
  if (per_row != 0 && n > ~u64{0} / per_row) {
    return Status::DataLoss("vector store row count overflows");
  }
  *out = n * per_row;
  return Status::OK();
}

}  // namespace

// ---- LazyValidator ----

LazyValidator::LazyValidator(const u8* base, SectionInfo info, bool eager)
    : base_(base), info_(std::move(info)) {
  const u64 npages = info_.page_crcs.size();
  words_ = (npages + 63) / 64;
  if (words_ > 0) {
    seen_ = std::make_unique<std::atomic<u64>[]>(words_);
    for (u64 w = 0; w < words_; ++w) {
      seen_[w].store(eager ? ~u64{0} : 0, std::memory_order_relaxed);
    }
  }
}

void LazyValidator::ValidatePage(u64 page) const {
  const u64 off = page * kSectionPageSize;
  const u64 len = std::min<u64>(kSectionPageSize, info_.length - off);
  if (Crc32c(base_ + off, len) != info_.page_crcs[page]) {
    tainted_.store(true, std::memory_order_release);
  }
  seen_[page >> 6].fetch_or(u64{1} << (page & 63), std::memory_order_acq_rel);
}

void LazyValidator::Touch(u64 off, u64 n) const {
  if (n == 0 || info_.length == 0) return;
  const u64 end = std::min<u64>(off + n, info_.length);
  if (off >= end) return;
  const u64 p0 = off / kSectionPageSize;
  const u64 p1 = (end - 1) / kSectionPageSize;
  for (u64 p = p0; p <= p1; ++p) {
    if ((seen_[p >> 6].load(std::memory_order_acquire) &
         (u64{1} << (p & 63))) != 0) {
      continue;
    }
    ValidatePage(p);
  }
}

Status LazyValidator::VerifyAll() const {
  for (u64 p = 0; p < info_.page_crcs.size(); ++p) {
    if ((seen_[p >> 6].load(std::memory_order_acquire) &
         (u64{1} << (p & 63))) == 0) {
      ValidatePage(p);
    }
  }
  // Re-check every page unconditionally: eager-marked pages were verified
  // at open, but a previously-lazy page that failed set the sticky flag.
  for (u64 p = 0; p < info_.page_crcs.size(); ++p) {
    const u64 off = p * kSectionPageSize;
    const u64 len = std::min<u64>(kSectionPageSize, info_.length - off);
    if (Crc32c(base_ + off, len) != info_.page_crcs[p]) {
      tainted_.store(true, std::memory_order_release);
    }
  }
  if (tainted()) {
    return Status::DataLoss("mapped section failed page validation");
  }
  return Status::OK();
}

// ---- FloatStore ----

FloatStore::FloatStore(int dim) : dim_(dim) { DJ_CHECK(dim > 0); }

u64 FloatStore::memory_bytes() const {
  if (!read_only_) {
    return data_.capacity() * sizeof(float) +
           norms_vec_.capacity() * sizeof(float);
  }
  return rows_bytes_.size() + norms_bytes_.size();
}

float FloatStore::Distance(const float* query, u32 id) const {
  if (rows_check_ != nullptr) {
    rows_check_->Touch(static_cast<u64>(id) * dim_ * sizeof(float),
                       static_cast<u64>(dim_) * sizeof(float));
  }
  return kern::SquaredL2(query, float_base() + static_cast<u64>(id) * dim_,
                         dim_);
}

void FloatStore::Reconstruct(u32 id, float* out) const {
  if (rows_check_ != nullptr) {
    rows_check_->Touch(static_cast<u64>(id) * dim_ * sizeof(float),
                       static_cast<u64>(dim_) * sizeof(float));
  }
  std::memcpy(out, float_base() + static_cast<u64>(id) * dim_,
              static_cast<size_t>(dim_) * sizeof(float));
}

Status FloatStore::AppendRow(const float* vec) {
  if (read_only_) {
    return Status::FailedPrecondition(
        "float store is read-only (loaded from a file section)");
  }
  data_.insert(data_.end(), vec, vec + dim_);
  norms_vec_.push_back(kern::Dot(vec, vec, dim_));
  ++n_;
  return Status::OK();
}

void FloatStore::TouchRows(u64 first, u64 nrows) const {
  if (rows_check_ != nullptr) {
    rows_check_->Touch(first * dim_ * sizeof(float),
                       nrows * dim_ * sizeof(float));
  }
  if (norms_check_ != nullptr) {
    norms_check_->Touch(first * sizeof(float), nrows * sizeof(float));
  }
}

bool FloatStore::tainted() const {
  return (rows_check_ != nullptr && rows_check_->tainted()) ||
         (norms_check_ != nullptr && norms_check_->tainted());
}

Status FloatStore::VerifyAll() const {
  if (rows_check_ != nullptr) DJ_RETURN_IF_ERROR(rows_check_->VerifyAll());
  if (norms_check_ != nullptr) DJ_RETURN_IF_ERROR(norms_check_->VerifyAll());
  return Status::OK();
}

Status FloatStore::Save(BinaryWriter& writer) const {
  writer.WriteU32(static_cast<u32>(StorageKind::kFloat));
  writer.WriteI32(dim_);
  writer.WriteU64(n_);
  writer.WriteAlignedSection(float_base(), n_ * dim_ * sizeof(float));
  writer.WriteAlignedSection(norms_base(), n_ * sizeof(float));
  return writer.status();
}

std::unique_ptr<VectorStore> FloatStore::CloneOwned() const {
  auto out = std::make_unique<FloatStore>(dim_);
  const u64 elems = n_ * static_cast<u64>(dim_);
  out->data_.assign(float_base(), float_base() + elems);
  out->norms_vec_.assign(norms_base(), norms_base() + n_);
  out->n_ = n_;
  return out;
}

Status FloatStore::SaveFromRows(
    BinaryWriter& writer, int dim, u64 n,
    const std::function<const float*(u64)>& row_fn) {
  DJ_CHECK(dim > 0);
  std::vector<float> rows(n * static_cast<u64>(dim));
  std::vector<float> norms(n);
  for (u64 i = 0; i < n; ++i) {
    const float* row = row_fn(i);
    std::memcpy(rows.data() + i * dim, row,
                static_cast<size_t>(dim) * sizeof(float));
    norms[i] = kern::Dot(row, row, dim);
  }
  writer.WriteU32(static_cast<u32>(StorageKind::kFloat));
  writer.WriteI32(dim);
  writer.WriteU64(n);
  writer.WriteAlignedSection(rows.data(), rows.size() * sizeof(float));
  writer.WriteAlignedSection(norms.data(), norms.size() * sizeof(float));
  return writer.status();
}

// ---- Sq8Store ----

Sq8Store::Sq8Store(int dim) : dim_(dim) { DJ_CHECK(dim > 0); }

u64 Sq8Store::memory_bytes() const {
  const u64 params = (lo_.capacity() + scale_.capacity()) * sizeof(float);
  if (!read_only_) return params + codes_vec_.capacity();
  return params + codes_bytes_.size();
}

float Sq8Store::Distance(const float* query, u32 id) const {
  if (codes_check_ != nullptr) {
    codes_check_->Touch(static_cast<u64>(id) * dim_,
                        static_cast<u64>(dim_));
  }
  return kern::SquaredL2Sq8(query, code_row(id), lo_.data(), scale_.data(),
                            dim_);
}

void Sq8Store::Reconstruct(u32 id, float* out) const {
  if (codes_check_ != nullptr) {
    codes_check_->Touch(static_cast<u64>(id) * dim_,
                        static_cast<u64>(dim_));
  }
  const u8* row = code_row(id);
  for (int d = 0; d < dim_; ++d) {
    out[d] = lo_[d] + scale_[d] * static_cast<float>(row[d]);
  }
}

void Sq8Store::TrainOn(const float* data, u64 n) {
  DJ_CHECK(!trained_ && n > 0);
  lo_.assign(dim_, 0.0f);
  scale_.assign(dim_, 0.0f);
  std::vector<float> hi(dim_);
  for (int d = 0; d < dim_; ++d) {
    lo_[d] = data[d];
    hi[d] = data[d];
  }
  for (u64 i = 1; i < n; ++i) {
    const float* row = data + i * static_cast<u64>(dim_);
    for (int d = 0; d < dim_; ++d) {
      lo_[d] = std::min(lo_[d], row[d]);
      hi[d] = std::max(hi[d], row[d]);
    }
  }
  for (int d = 0; d < dim_; ++d) {
    scale_[d] = (hi[d] - lo_[d]) / 255.0f;
  }
  trained_ = true;
}

void Sq8Store::EncodeRow(const float* vec, u8* out) const {
  for (int d = 0; d < dim_; ++d) {
    if (scale_[d] <= 0.0f) {
      out[d] = 0;
      continue;
    }
    const float t = std::round((vec[d] - lo_[d]) / scale_[d]);
    out[d] = static_cast<u8>(std::clamp(t, 0.0f, 255.0f));
  }
}

Status Sq8Store::AppendRow(const float* vec) {
  return AppendRows(vec, 1);
}

Status Sq8Store::AppendRows(const float* data, u64 n) {
  if (read_only_) {
    return Status::FailedPrecondition(
        "sq8 store is read-only (loaded from a file section)");
  }
  if (n == 0) return Status::OK();
  // The first batch trains lo/scale (per-dim min/max); the parameters are
  // then frozen and later rows clamp-encode against them. Build with one
  // big AddBatch for representative ranges.
  if (!trained_) TrainOn(data, n);
  const u64 old = codes_vec_.size();
  codes_vec_.resize(old + n * static_cast<u64>(dim_));
  for (u64 i = 0; i < n; ++i) {
    EncodeRow(data + i * static_cast<u64>(dim_),
              codes_vec_.data() + old + i * static_cast<u64>(dim_));
  }
  n_ += n;
  return Status::OK();
}

void Sq8Store::TouchRows(u64 first, u64 nrows) const {
  if (codes_check_ != nullptr) {
    codes_check_->Touch(first * static_cast<u64>(dim_),
                        nrows * static_cast<u64>(dim_));
  }
}

bool Sq8Store::tainted() const {
  return codes_check_ != nullptr && codes_check_->tainted();
}

Status Sq8Store::VerifyAll() const {
  if (codes_check_ != nullptr) return codes_check_->VerifyAll();
  return Status::OK();
}

Status Sq8Store::Save(BinaryWriter& writer) const {
  std::vector<float> lo = lo_, scale = scale_;
  if (!trained_) {  // empty store: consistent zeroed parameters
    lo.assign(dim_, 0.0f);
    scale.assign(dim_, 0.0f);
  }
  writer.WriteU32(static_cast<u32>(StorageKind::kSq8));
  writer.WriteI32(dim_);
  writer.WriteU64(n_);
  writer.WriteFloatArray(lo.data(), lo.size());
  writer.WriteFloatArray(scale.data(), scale.size());
  writer.WriteAlignedSection(codes_base(), n_ * static_cast<u64>(dim_));
  return writer.status();
}

std::unique_ptr<VectorStore> Sq8Store::CloneOwned() const {
  auto out = std::make_unique<Sq8Store>(dim_);
  out->lo_ = lo_;
  out->scale_ = scale_;
  out->trained_ = trained_;
  const u64 bytes = n_ * static_cast<u64>(dim_);
  out->codes_vec_.assign(codes_base(), codes_base() + bytes);
  out->n_ = n_;
  return out;
}

Status Sq8Store::SaveFromRows(
    BinaryWriter& writer, int dim, u64 n,
    const std::function<const float*(u64)>& row_fn) {
  DJ_CHECK(dim > 0);
  Sq8Store store(dim);
  if (n > 0) {
    // Pass 1: train on min/max over all rows without materialising them.
    std::vector<float> lo(dim), hi(dim);
    const float* first = row_fn(0);
    for (int d = 0; d < dim; ++d) {
      lo[d] = first[d];
      hi[d] = first[d];
    }
    for (u64 i = 1; i < n; ++i) {
      const float* row = row_fn(i);
      for (int d = 0; d < dim; ++d) {
        lo[d] = std::min(lo[d], row[d]);
        hi[d] = std::max(hi[d], row[d]);
      }
    }
    store.lo_ = std::move(lo);
    store.scale_.resize(dim);
    for (int d = 0; d < dim; ++d) {
      store.scale_[d] = (hi[d] - store.lo_[d]) / 255.0f;
    }
    store.trained_ = true;
    // Pass 2: encode.
    store.codes_vec_.resize(n * static_cast<u64>(dim));
    for (u64 i = 0; i < n; ++i) {
      store.EncodeRow(row_fn(i),
                      store.codes_vec_.data() + i * static_cast<u64>(dim));
    }
    store.n_ = n;
  }
  return store.Save(writer);
}

// ---- Load / Skip ----

namespace {

struct StoreHeader {
  StorageKind kind = StorageKind::kFloat;
  i32 dim = 0;
  u64 n = 0;
};

Status ReadStoreHeader(BinaryReader& reader, StoreHeader* out) {
  u32 kind_raw = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU32(&kind_raw));
  if (kind_raw != static_cast<u32>(StorageKind::kFloat) &&
      kind_raw != static_cast<u32>(StorageKind::kSq8)) {
    return Status::DataLoss("unknown vector store kind " +
                            std::to_string(kind_raw));
  }
  out->kind = static_cast<StorageKind>(kind_raw);
  DJ_RETURN_IF_ERROR(reader.ReadI32(&out->dim));
  if (out->dim <= 0 || out->dim > kMaxStoreDim) {
    return Status::DataLoss("vector store dim " + std::to_string(out->dim) +
                            " out of range");
  }
  DJ_RETURN_IF_ERROR(reader.ReadU64(&out->n));
  return Status::OK();
}

Status ReadSectionExpecting(BinaryReader& reader, u64 expected_bytes,
                            SectionInfo* out) {
  DJ_RETURN_IF_ERROR(reader.ReadSection(out));
  if (out->length != expected_bytes) {
    return Status::DataLoss(reader.path() + ": section holds " +
                            std::to_string(out->length) + " bytes, want " +
                            std::to_string(expected_bytes));
  }
  return Status::OK();
}

// Loads one section either as owned bytes (pread + full CRC) or as a
// mapped region with the requested verification policy. Exactly one of
// *bytes / *region+*check is filled; *base points at the data either way.
Status LoadSectionPayload(BinaryReader& reader, const SectionInfo& info,
                          const OpenOptions& options, std::string* bytes,
                          std::shared_ptr<MappedRegion>* region,
                          std::unique_ptr<LazyValidator>* check,
                          const u8** base) {
  if (options.map == MapMode::kOwned) {
    // Owned loads always verify fully — the bytes are streamed through
    // the CPU anyway, so the check is nearly free.
    DJ_RETURN_IF_ERROR(reader.ReadSectionBytes(info, bytes));
    *base = reinterpret_cast<const u8*>(bytes->data());
    return Status::OK();
  }
  DJ_RETURN_IF_ERROR(reader.env()->NewMappedRegion(
      reader.path(), info.offset, info.length, region));
  *base = static_cast<const u8*>((*region)->data());
  const bool eager = options.verify == VerifyMode::kFull;
  if (eager && info.length > 0) {
    if (Crc32c(*base, info.length) != info.crc) {
      return Status::DataLoss(reader.path() +
                              ": mapped section checksum mismatch");
    }
  }
  *check = std::make_unique<LazyValidator>(*base, info, eager);
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<VectorStore>> LoadVectorStore(
    BinaryReader& reader, const OpenOptions& options) {
  StoreHeader h;
  DJ_RETURN_IF_ERROR(ReadStoreHeader(reader, &h));
  if (h.kind == StorageKind::kFloat) {
    u64 rows_bytes = 0;
    DJ_RETURN_IF_ERROR(
        CheckedPayloadBytes(h.n, h.dim, sizeof(float), &rows_bytes));
    SectionInfo rows_info, norms_info;
    DJ_RETURN_IF_ERROR(ReadSectionExpecting(reader, rows_bytes, &rows_info));
    DJ_RETURN_IF_ERROR(
        ReadSectionExpecting(reader, h.n * sizeof(float), &norms_info));
    // make_unique cannot reach the private ctor. dj_lint: allow(naked-new)
    auto store = std::unique_ptr<FloatStore>(new FloatStore());
    store->dim_ = h.dim;
    store->n_ = h.n;
    store->read_only_ = true;
    const u8* rows_base = nullptr;
    const u8* norms_base = nullptr;
    DJ_RETURN_IF_ERROR(LoadSectionPayload(
        reader, rows_info, options, &store->rows_bytes_,
        &store->rows_region_, &store->rows_check_, &rows_base));
    DJ_RETURN_IF_ERROR(LoadSectionPayload(
        reader, norms_info, options, &store->norms_bytes_,
        &store->norms_region_, &store->norms_check_, &norms_base));
    store->rows_ = reinterpret_cast<const float*>(rows_base);
    store->norms_ = reinterpret_cast<const float*>(norms_base);
    return std::unique_ptr<VectorStore>(std::move(store));
  }
  // SQ8.
  // make_unique cannot reach the private ctor. dj_lint: allow(naked-new)
  auto store = std::unique_ptr<Sq8Store>(new Sq8Store());
  store->dim_ = h.dim;
  store->n_ = h.n;
  store->read_only_ = true;
  store->trained_ = true;
  DJ_RETURN_IF_ERROR(reader.ReadFloatArray(&store->lo_));
  DJ_RETURN_IF_ERROR(reader.ReadFloatArray(&store->scale_));
  if (store->lo_.size() != static_cast<size_t>(h.dim) ||
      store->scale_.size() != static_cast<size_t>(h.dim)) {
    return Status::DataLoss(reader.path() +
                            ": sq8 lo/scale length does not match dim");
  }
  u64 codes_bytes = 0;
  DJ_RETURN_IF_ERROR(CheckedPayloadBytes(h.n, h.dim, 1, &codes_bytes));
  SectionInfo codes_info;
  DJ_RETURN_IF_ERROR(ReadSectionExpecting(reader, codes_bytes, &codes_info));
  DJ_RETURN_IF_ERROR(LoadSectionPayload(
      reader, codes_info, options, &store->codes_bytes_,
      &store->codes_region_, &store->codes_check_, &store->codes_));
  return std::unique_ptr<VectorStore>(std::move(store));
}

Result<StorageKind> SkipVectorStore(BinaryReader& reader) {
  StoreHeader h;
  DJ_RETURN_IF_ERROR(ReadStoreHeader(reader, &h));
  SectionInfo scratch;
  if (h.kind == StorageKind::kFloat) {
    DJ_RETURN_IF_ERROR(reader.ReadSection(&scratch));
    DJ_RETURN_IF_ERROR(reader.ReadSection(&scratch));
    return StorageKind::kFloat;
  }
  std::vector<float> params;
  DJ_RETURN_IF_ERROR(reader.ReadFloatArray(&params));
  DJ_RETURN_IF_ERROR(reader.ReadFloatArray(&params));
  DJ_RETURN_IF_ERROR(reader.ReadSection(&scratch));
  return StorageKind::kSq8;
}

}  // namespace ann
}  // namespace deepjoin
