// The unified index open/save API (DESIGN.md §14). One container format
// ("DJIX") covers every backend:
//
//   file  := DJF1 header, then
//            magic:u32 ('DJIX') version:u32 kind:string payload
//
// where kind ("flat" / "hnsw" / "ivfpq") dispatches the payload to the
// backend's LoadPayload. Bulk data (rows, codes, packed graphs, inverted
// lists) travels in page-aligned sections, so an OpenOptions::kMapped
// open is O(1) in the index size: the sections are mmap'd zero-copy and
// their pages CRC-validate lazily on first touch.
//
// Pre-DJIX standalone HNSW files ("HNSW" magic) still open through
// OpenIndex — the legacy fallback produces a live owned-float index and
// therefore only accepts default OpenOptions.
#ifndef DEEPJOIN_ANN_INDEX_IO_H_
#define DEEPJOIN_ANN_INDEX_IO_H_

#include <memory>
#include <string>

#include "ann/vector_index.h"
#include "ann/vector_store.h"
#include "util/binary_io.h"
#include "util/env.h"
#include "util/status.h"

namespace deepjoin {
namespace ann {

/// Opens an index file written by SaveIndexFile (or a legacy standalone
/// HNSW file). `env` nullptr means Env::Default(). O(1) in the index size
/// for OpenOptions::kMapped.
Result<std::unique_ptr<VectorIndex>> OpenIndex(const std::string& path,
                                               const OpenOptions& options = {},
                                               Env* env = nullptr);

/// The reader-cursor form of OpenIndex: consumes one DJIX (or legacy
/// HNSW) index from `reader`. Lets callers embed an index inside a larger
/// artifact (the searcher checkpoint does).
Result<std::unique_ptr<VectorIndex>> LoadIndexPayload(
    BinaryReader& reader, const OpenOptions& options = {});

/// Writes `magic version kind payload` at the writer cursor — the inverse
/// of LoadIndexPayload.
[[nodiscard]] Status SaveIndexPayload(const VectorIndex& index,
                                      BinaryWriter& writer,
                                      const SaveOptions& options = {});

/// Crash-safe whole-file save (AtomicSave: tmp + fsync + rename).
[[nodiscard]] Status SaveIndexFile(const VectorIndex& index,
                                   const std::string& path,
                                   const SaveOptions& options = {},
                                   Env* env = nullptr);

}  // namespace ann
}  // namespace deepjoin

#endif  // DEEPJOIN_ANN_INDEX_IO_H_
