// Row storage behind the vector indexes (DESIGN.md §14): every backend
// scores queries through a VectorStore instead of touching raw float
// arrays, so the same index code serves four physical representations —
//
//   {float32, SQ8} x {owned memory, zero-copy mmap}
//
// SQ8 is per-dimension asymmetric scalar quantization: each dimension d
// stores lo[d] and scale[d] = (max[d]-min[d])/255 and every row byte
// decodes as v = lo[d] + scale[d]*code[d]. Distances against a float
// query go through the fused kern::SquaredL2Sq8 kernel — quantized search
// never materialises a decoded row. The reconstruction error per
// dimension is bounded by scale[d]/2 (round-to-nearest), which the
// round-trip test asserts.
//
// Mapped stores hold a shared_ptr<MappedRegion> (Env::NewMappedRegion)
// over a page-aligned DJF1 section; establishing one is O(1) in the data
// size. Integrity is validated lazily per page on first touch
// (VerifyMode::kLazy, the mapped default): a corrupt page flips the
// sticky tainted() flag instead of failing the search — results may be
// wrong but never undefined, and callers that need a hard guarantee use
// VerifyMode::kFull or VerifyAll(). Owned loads always verify fully.
#ifndef DEEPJOIN_ANN_VECTOR_STORE_H_
#define DEEPJOIN_ANN_VECTOR_STORE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/binary_io.h"
#include "util/common.h"
#include "util/env.h"
#include "util/status.h"

namespace deepjoin {
namespace ann {

/// Container header shared by every index artifact written through the
/// unified Save/OpenIndex API (index_io.h): magic, format version, then a
/// kind string ("flat" / "hnsw" / "ivfpq") that dispatches the payload.
inline constexpr u32 kDjIndexMagic = 0x444A4958;  // "DJIX"
inline constexpr u32 kDjIndexVersion = 1;

/// Physical element representation of a store.
enum class StorageKind : u8 {
  kFloat = 0,  ///< float32 rows + cached ||row||^2 norms
  kSq8 = 1,    ///< u8 codes + per-dim lo/scale (asymmetric SQ8)
  kAuto = 255  ///< save: keep current repr; open: whatever the file holds
};

/// How a store's bulk payload is brought into the process.
enum class MapMode : u8 {
  kOwned = 0,  ///< pread into owned memory, eagerly CRC-validated
  kMapped = 1  ///< zero-copy mmap of the section, O(1) open
};

/// Integrity-checking policy for section payloads at open time.
enum class VerifyMode : u8 {
  kDefault = 0,  ///< kFull for owned, kLazy for mapped
  kFull = 1,     ///< validate every page before the open returns
  kLazy = 2      ///< mapped only: validate each page on first touch
};

/// Knobs for VectorIndex::Save (see index_io.h for the file layout).
struct SaveOptions {
  /// kAuto keeps the index's current representation. kSq8 on a float
  /// index trains quantization at save time; kFloat on an SQ8 index
  /// requires a float refinement store to be present.
  StorageKind storage = StorageKind::kAuto;
  /// When saving as kSq8 from float data, also write the exact float
  /// rows as a refinement payload (enables refine_factor reranking and
  /// lossless reopening as kFloat, at full float disk cost).
  bool keep_float_refine = false;
};

/// Knobs for ann::OpenIndex / LoadIndexPayload.
struct OpenOptions {
  /// kAuto opens whatever the file's primary store holds. kFloat on an
  /// SQ8 file requires the float refinement payload; kSq8 on a
  /// float-only file is FailedPrecondition (quantize at save, not open).
  StorageKind storage = StorageKind::kAuto;
  MapMode map = MapMode::kOwned;
  VerifyMode verify = VerifyMode::kDefault;
};

/// Lazy per-page CRC validation over one in-memory view of a section.
/// Touch(range) validates not-yet-seen pages against SectionInfo's
/// page_crcs; a mismatch sets the sticky tainted flag (it never throws or
/// fails the read — mapped bytes are bounds-checked by construction, so a
/// corrupt page yields wrong-but-defined results). Thread-safe: the seen
/// bitmap is atomic and validation is idempotent.
class LazyValidator {
 public:
  /// `base` must cover info.length bytes; `eager` pages are all marked
  /// seen immediately (the caller verified them already).
  LazyValidator(const u8* base, SectionInfo info, bool eager);

  /// Validates every untouched page overlapping [off, off+n).
  void Touch(u64 off, u64 n) const;
  /// Validates every page; DataLoss if any (now or previously) failed.
  [[nodiscard]] Status VerifyAll() const;
  bool tainted() const { return tainted_.load(std::memory_order_acquire); }

 private:
  void ValidatePage(u64 page) const;

  const u8* base_;
  SectionInfo info_;
  mutable std::unique_ptr<std::atomic<u64>[]> seen_;  // bitmap, 1 = checked
  u64 words_ = 0;
  mutable std::atomic<bool> tainted_{false};
};

/// Abstract row storage. Rows are fixed-dim, id-addressed [0, size());
/// mutation (Append*) is only supported by owned stores — read_only()
/// stores were loaded from a file section and reject it.
class VectorStore {
 public:
  virtual ~VectorStore() = default;

  virtual StorageKind kind() const = 0;
  virtual int dim() const = 0;
  virtual u64 size() const = 0;
  virtual bool read_only() const = 0;
  /// Heap bytes resident for row data (mapped payloads count 0: their
  /// pages live in the kernel page cache, not the process heap).
  virtual u64 memory_bytes() const = 0;

  /// Squared L2 distance from a float query to row `id`. Allocation-free;
  /// on the hot path of every backend.
  virtual float Distance(const float* query, u32 id) const = 0;
  /// Decodes row `id` into out[0, dim) (exact for float, lossy for SQ8).
  virtual void Reconstruct(u32 id, float* out) const = 0;

  [[nodiscard]] virtual Status AppendRow(const float* vec) = 0;
  [[nodiscard]] virtual Status AppendRows(const float* data, u64 n) {
    for (u64 i = 0; i < n; ++i) {
      DJ_RETURN_IF_ERROR(AppendRow(data + i * static_cast<u64>(dim())));
    }
    return Status::OK();
  }

  /// Row-major float rows, or nullptr when the representation is not
  /// raw float (SQ8). Gates FlatIndex's GEMM batch arm and vector().
  virtual const float* float_base() const { return nullptr; }
  /// Cached ||row||^2 per row, or nullptr (paired with float_base()).
  virtual const float* norms_base() const { return nullptr; }

  /// Lazily validates the pages backing rows [first, first+nrows) (no-op
  /// for owned stores). Bulk scans call this once up front instead of
  /// paying a per-row check.
  virtual void TouchRows(u64 first, u64 nrows) const {
    (void)first;
    (void)nrows;
  }
  /// True once any lazy page check failed; results since are suspect.
  virtual bool tainted() const { return false; }
  /// Forces full validation of every payload page (the "full check"
  /// escape hatch for lazily-opened stores).
  [[nodiscard]] virtual Status VerifyAll() const { return Status::OK(); }

  /// Writes this store's payload (kind, dim, n, then representation-
  /// specific records/sections) — the inverse of LoadVectorStore.
  [[nodiscard]] virtual Status Save(BinaryWriter& writer) const = 0;

  /// Deep-copies into an owned, mutable store of the same representation
  /// (same quantization parameters and codes for SQ8). How an owned open
  /// restores legacy add-after-load semantics.
  virtual std::unique_ptr<VectorStore> CloneOwned() const = 0;
};

/// float32 rows with cached squared norms. Owned mode is the mutable
/// in-memory store every index builds into; section-backed modes (owned
/// bytes or mapped region) are read-only.
class FloatStore : public VectorStore {
 public:
  explicit FloatStore(int dim);

  StorageKind kind() const override { return StorageKind::kFloat; }
  int dim() const override { return dim_; }
  u64 size() const override { return n_; }
  bool read_only() const override { return read_only_; }
  u64 memory_bytes() const override;
  float Distance(const float* query, u32 id) const override;
  void Reconstruct(u32 id, float* out) const override;
  [[nodiscard]] Status AppendRow(const float* vec) override;
  const float* float_base() const override {
    return read_only_ ? rows_ : data_.data();
  }
  const float* norms_base() const override {
    return read_only_ ? norms_ : norms_vec_.data();
  }
  void TouchRows(u64 first, u64 nrows) const override;
  bool tainted() const override;
  [[nodiscard]] Status VerifyAll() const override;
  [[nodiscard]] Status Save(BinaryWriter& writer) const override;
  std::unique_ptr<VectorStore> CloneOwned() const override;

  /// Streams `n` rows (row_fn(i) -> row pointer) into writer as a float
  /// store payload, computing norms. Used to save non-FloatStore-backed
  /// data (e.g. a live HNSW's chunked rows) without an intermediate copy
  /// of the store object.
  [[nodiscard]] static Status SaveFromRows(
      BinaryWriter& writer, int dim, u64 n,
      const std::function<const float*(u64)>& row_fn);

 private:
  friend Result<std::unique_ptr<VectorStore>> LoadVectorStore(
      BinaryReader& reader, const OpenOptions& options);
  FloatStore() = default;

  int dim_ = 0;
  u64 n_ = 0;
  bool read_only_ = false;
  // Owned mutable mode.
  std::vector<float> data_;
  std::vector<float> norms_vec_;
  // Section-backed mode: bytes live either in owned strings or in mapped
  // regions; rows_/norms_ point into whichever is active.
  std::string rows_bytes_, norms_bytes_;
  std::shared_ptr<MappedRegion> rows_region_, norms_region_;
  std::unique_ptr<LazyValidator> rows_check_, norms_check_;
  const float* rows_ = nullptr;
  const float* norms_ = nullptr;
};

/// SQ8 rows: u8 codes with per-dimension lo/scale. The first Append or
/// AppendBatch trains lo/scale on that batch (per-dim min/max); later
/// appends clamp-encode with the frozen parameters. Distances go through
/// the fused kern::SquaredL2Sq8 kernel (no row decode).
class Sq8Store : public VectorStore {
 public:
  explicit Sq8Store(int dim);

  StorageKind kind() const override { return StorageKind::kSq8; }
  int dim() const override { return dim_; }
  u64 size() const override { return n_; }
  bool read_only() const override { return read_only_; }
  u64 memory_bytes() const override;
  float Distance(const float* query, u32 id) const override;
  void Reconstruct(u32 id, float* out) const override;
  [[nodiscard]] Status AppendRow(const float* vec) override;
  [[nodiscard]] Status AppendRows(const float* data, u64 n) override;
  void TouchRows(u64 first, u64 nrows) const override;
  bool tainted() const override;
  [[nodiscard]] Status VerifyAll() const override;
  [[nodiscard]] Status Save(BinaryWriter& writer) const override;
  std::unique_ptr<VectorStore> CloneOwned() const override;

  bool trained() const { return trained_; }
  const std::vector<float>& lo() const { return lo_; }
  const std::vector<float>& scale() const { return scale_; }

  /// Two-pass SQ8 save of arbitrary float rows: pass 1 trains per-dim
  /// min/max, pass 2 encodes. The float->SQ8 conversion path of Save.
  [[nodiscard]] static Status SaveFromRows(
      BinaryWriter& writer, int dim, u64 n,
      const std::function<const float*(u64)>& row_fn);

 private:
  friend Result<std::unique_ptr<VectorStore>> LoadVectorStore(
      BinaryReader& reader, const OpenOptions& options);
  Sq8Store() = default;

  void TrainOn(const float* data, u64 n);
  void EncodeRow(const float* vec, u8* out) const;
  const u8* codes_base() const {
    return read_only_ ? codes_ : codes_vec_.data();
  }
  const u8* code_row(u32 id) const {
    return codes_base() + static_cast<u64>(id) * static_cast<u64>(dim_);
  }

  int dim_ = 0;
  u64 n_ = 0;
  bool read_only_ = false;
  bool trained_ = false;
  std::vector<float> lo_, scale_;
  // Owned mutable mode.
  std::vector<u8> codes_vec_;
  // Section-backed mode.
  std::string codes_bytes_;
  std::shared_ptr<MappedRegion> codes_region_;
  std::unique_ptr<LazyValidator> codes_check_;
  const u8* codes_ = nullptr;
};

/// Reads one store payload from the reader cursor, honouring options.map
/// and options.verify (options.storage is resolved by the index loaders,
/// which know whether a refinement payload follows). O(1) in the payload
/// size for mapped opens.
Result<std::unique_ptr<VectorStore>> LoadVectorStore(
    BinaryReader& reader, const OpenOptions& options);

/// Advances the reader past one store payload without loading it (cheap:
/// sections are cursor-skipped). Returns the skipped payload's kind.
Result<StorageKind> SkipVectorStore(BinaryReader& reader);

}  // namespace ann
}  // namespace deepjoin

#endif  // DEEPJOIN_ANN_VECTOR_STORE_H_
