// Expert-label oracle for Table 7 (see DESIGN.md substitution table). The
// generator records the latent domain and entity ids behind every cell;
// the oracle judges a retrieved column joinable iff it shares the query's
// domain and a sufficient fraction of the query's latent entities appear
// in it — judging *meaning*, not any fixed vector-distance threshold.
// No search method ever reads these annotations.
#ifndef DEEPJOIN_EVAL_ORACLE_H_
#define DEEPJOIN_EVAL_ORACLE_H_

#include <unordered_set>

#include "lake/column.h"

namespace deepjoin {
namespace eval {

class DomainOracle {
 public:
  /// `min_entity_overlap`: fraction of query entities that must occur in
  /// the target for an "expert" to call the pair joinable.
  explicit DomainOracle(double min_entity_overlap = 0.25)
      : min_entity_overlap_(min_entity_overlap) {}

  bool Joinable(const lake::Column& query,
                const lake::Column& target) const {
    if (query.domain_id == lake::kNoDomain ||
        query.domain_id != target.domain_id) {
      return false;
    }
    if (query.entity_ids.empty()) return false;
    std::unordered_set<u32> q(query.entity_ids.begin(),
                              query.entity_ids.end());
    std::unordered_set<u32> t(target.entity_ids.begin(),
                              target.entity_ids.end());
    size_t shared = 0;
    for (u32 e : q) shared += t.count(e);
    return static_cast<double>(shared) >=
           min_entity_overlap_ * static_cast<double>(q.size());
  }

 private:
  double min_entity_overlap_;
};

}  // namespace eval
}  // namespace deepjoin

#endif  // DEEPJOIN_EVAL_ORACLE_H_
