#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace deepjoin {
namespace eval {

double PrecisionAtK(const std::vector<u32>& model_ids,
                    const std::vector<u32>& exact_ids) {
  if (exact_ids.empty()) return 0.0;
  std::unordered_set<u32> exact(exact_ids.begin(), exact_ids.end());
  size_t hit = 0;
  for (u32 id : model_ids) hit += exact.count(id);
  return static_cast<double>(hit) / static_cast<double>(exact_ids.size());
}

double NdcgAtK(const std::vector<u32>& model_ids,
               const std::vector<u32>& exact_ids,
               const std::function<double(u32)>& jn_of) {
  auto dcg = [&](const std::vector<u32>& ids) {
    double sum = 0.0;
    for (size_t i = 0; i < ids.size(); ++i) {
      sum += jn_of(ids[i]) / std::log2(static_cast<double>(i) + 2.0);
    }
    return sum;
  };
  const double exact_dcg = dcg(exact_ids);
  if (exact_dcg <= 0.0) return 1.0;
  return std::min(1.0, dcg(model_ids) / exact_dcg);
}

PRF1 PoolPRF1(const std::vector<u32>& retrieved,
              const std::vector<u32>& pool_joinable) {
  PRF1 out;
  if (retrieved.empty()) return out;
  std::unordered_set<u32> joinable(pool_joinable.begin(),
                                   pool_joinable.end());
  size_t hits = 0;
  for (u32 id : retrieved) hits += joinable.count(id);
  out.precision =
      static_cast<double>(hits) / static_cast<double>(retrieved.size());
  out.recall = joinable.empty()
                   ? 0.0
                   : static_cast<double>(hits) /
                         static_cast<double>(joinable.size());
  out.f1 = (out.precision + out.recall) > 0.0
               ? 2.0 * out.precision * out.recall /
                     (out.precision + out.recall)
               : 0.0;
  return out;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

}  // namespace eval
}  // namespace deepjoin
