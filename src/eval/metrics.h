// Evaluation metrics of §5.1.
//   Precision@k : overlap between the model's top-k and the exact top-k.
//   NDCG@k      : DCG_model / DCG_exact with DCG = sum jn(Q,X_i)/log2(i+1).
//   P/R/F1      : against expert labels under the retrieved-pool protocol.
#ifndef DEEPJOIN_EVAL_METRICS_H_
#define DEEPJOIN_EVAL_METRICS_H_

#include <functional>
#include <vector>

#include "util/common.h"

namespace deepjoin {
namespace eval {

/// |model ∩ exact| / k (k = exact.size()).
double PrecisionAtK(const std::vector<u32>& model_ids,
                    const std::vector<u32>& exact_ids);

/// DCG_model / DCG_exact, where `jn_of(id)` returns the true joinability
/// of a repository column to the query. Returns 1.0 when DCG_exact is 0
/// (no joinable column exists; any ranking is vacuously perfect).
double NdcgAtK(const std::vector<u32>& model_ids,
               const std::vector<u32>& exact_ids,
               const std::function<double(u32)>& jn_of);

struct PRF1 {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Retrieved-pool protocol: `retrieved` is one method's result set,
/// `pool_joinable` the set of columns in the union pool the labeler judged
/// joinable. precision = |retrieved ∩ joinable| / |retrieved|,
/// recall = |retrieved ∩ joinable| / |pool joinable|.
PRF1 PoolPRF1(const std::vector<u32>& retrieved,
              const std::vector<u32>& pool_joinable);

/// Mean of a vector (0 for empty) — for averaging over queries.
double Mean(const std::vector<double>& values);

}  // namespace eval
}  // namespace deepjoin

#endif  // DEEPJOIN_EVAL_METRICS_H_
