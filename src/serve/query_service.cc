#include "serve/query_service.h"

#include <chrono>
#include <utility>

#include "util/metrics.h"
#include "util/timer.h"

namespace deepjoin {
namespace serve {

namespace {

double Ms(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

// ---- SLO accounting (DESIGN.md §13) ----
// Function-local statics: the registry lookups allocate once per process,
// before the steady state the alloc-ban tests cover.

metrics::Counter* AdmittedCounter() {
  static metrics::Counter* const c =
      metrics::MetricsRegistry::Global().GetCounter(  // dj_alloc: allow(alloc)
          "dj_serve_admitted_total");
  return c;
}

metrics::Counter* RejectedCounter() {
  static metrics::Counter* const c =
      metrics::MetricsRegistry::Global().GetCounter("dj_serve_rejected_total");
  return c;
}

metrics::Counter* ExpiredCounter() {
  static metrics::Counter* const c =
      metrics::MetricsRegistry::Global().GetCounter("dj_serve_expired_total");
  return c;
}

metrics::Counter* CompletedCounter() {
  static metrics::Counter* const c =
      metrics::MetricsRegistry::Global().GetCounter("dj_serve_completed_total");
  return c;
}

metrics::Counter* BatchesCounter() {
  static metrics::Counter* const c =
      metrics::MetricsRegistry::Global().GetCounter("dj_serve_batches_total");
  return c;
}

metrics::Histogram* BatchSizeHistogram() {
  static metrics::Histogram* const h =
      metrics::MetricsRegistry::Global().GetHistogram(
          "dj_serve_batch_size", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  return h;
}

metrics::Histogram* QueueWaitHistogram() {
  static metrics::Histogram* const h =
      metrics::MetricsRegistry::Global().GetHistogram(
          "dj_serve_queue_wait_ms");
  return h;
}

metrics::Histogram* ExecuteHistogram() {
  static metrics::Histogram* const h =
      metrics::MetricsRegistry::Global().GetHistogram("dj_serve_execute_ms");
  return h;
}

metrics::Histogram* TotalHistogram() {
  static metrics::Histogram* const h =
      metrics::MetricsRegistry::Global().GetHistogram("dj_serve_total_ms");
  return h;
}

bool SameExecOptions(const core::SearchOptions& a,
                     const core::SearchOptions& b) {
  return a.k == b.k && a.ef_search == b.ef_search && a.nprobe == b.nprobe;
}

/// Completion event for the blocking Query() wrapper. One per client
/// thread (a thread has at most one blocking query in flight), reused
/// across calls.
struct Waiter {
  Mutex mu{"serve.completion", rank::kServeCompletion};
  CondVar cv;
  bool done DJ_GUARDED_BY(mu) = false;
};

void SignalWaiter(Request* r) {
  auto* const w = static_cast<Waiter*>(r->ctx);
  MutexLock lock(w->mu);
  w->done = true;
  w->cv.NotifyAll();
}

}  // namespace

QueryService::QueryService(core::EmbeddingSearcher* searcher,
                           const QueryServiceConfig& config)
    : searcher_(searcher), config_(config), batcher_(config.batcher) {
  // Dispatch arrays sized once here; the dispatcher never allocates.
  batch_.resize(config_.batcher.max_batch);
  expired_.resize(config_.batcher.max_queue);
  query_ptrs_.resize(config_.batcher.max_batch);
  out_ptrs_.resize(config_.batcher.max_batch);
  rider_meta_.resize(config_.batcher.max_batch);
  done_.reserve(config_.batcher.max_batch);
}

QueryService::~QueryService() { Stop(); }

void QueryService::Start() {
  {
    MutexLock lock(mu_);
    if (started_ || stopping_) return;
    started_ = true;
  }
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

void QueryService::Stop() {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  batcher_.Stop();
  if (dispatcher_.joinable()) {
    dispatcher_.join();
  } else {
    // Never started: drain whatever queued inline (the stopped batcher
    // flushes immediately, so this terminates once the queue empties).
    DispatcherLoop();
  }
}

Status QueryService::Submit(Request* r) {
  // Per-query trace trees are incompatible with batched dispatch; latency
  // accounting happens through the dj_serve_* histograms instead.
  r->options.collect_stats = false;
  Status st = batcher_.Submit(r);
  if (st.ok()) {
    AdmittedCounter()->Increment();
  } else if (st.code() == StatusCode::kResourceExhausted) {
    RejectedCounter()->Increment();
  } else if (st.code() == StatusCode::kDeadlineExceeded) {
    ExpiredCounter()->Increment();
  }
  return st;
}

Status QueryService::Query(Request* req) {
  thread_local Waiter waiter;
  {
    MutexLock lock(waiter.mu);
    waiter.done = false;
  }
  req->done = &SignalWaiter;
  req->ctx = &waiter;
  DJ_RETURN_IF_ERROR(Submit(req));
  // Even an expired request completes (with DeadlineExceeded) rather than
  // being abandoned, so this wait always terminates; the bound is a
  // re-check tick, not a timeout.
  MutexLock lock(waiter.mu);
  while (!waiter.done) {
    (void)waiter.cv.WaitFor(waiter.mu, std::chrono::milliseconds(10));
  }
  return req->status;
}

Status QueryService::Query(const lake::Column& query,
                           const core::SearchOptions& options,
                           Deadline deadline,
                           core::EmbeddingSearcher::SearchResult* out) {
  Request req;
  req.query = &query;
  req.options = options;
  req.deadline = deadline;
  Status st = Query(&req);
  *out = std::move(req.result);
  return st;
}

void QueryService::DispatcherLoop() {
  for (;;) {
    size_t num_expired = 0;
    const size_t n =
        batcher_.CollectBatch(batch_.data(), batch_.size(), expired_.data(),
                              expired_.size(), &num_expired);
    const auto now = std::chrono::steady_clock::now();
    for (size_t i = 0; i < num_expired; ++i) {
      // Queue-stage expiry: completes without touching encode or the ANN
      // index (the metrics-visible short-circuit the tests assert).
      Request* const r = expired_[i];
      r->queue_ms = Ms(now - r->admit_time);
      Complete(r, Status::DeadlineExceeded("deadline expired in queue"));
    }
    if (n == 0) {
      if (num_expired == 0) break;  // stopped and fully drained
      continue;
    }
    // Flat backends execute through the cooperative shared scan (arrivals
    // board between corpus tiles); everything else runs the collected
    // batch whole.
    core::EmbeddingSearcher::StreamScan scan = searcher_->NewStreamScan();
    if (scan.valid()) {
      RunStreamScan(&scan, batch_.data(), n);
    } else {
      ExecuteBatch(batch_.data(), n);
    }
  }
}

size_t QueryService::BoardGroup(core::EmbeddingSearcher::StreamScan* scan,
                                Request** batch, size_t n) {
  const auto now = std::chrono::steady_clock::now();
  size_t boarded = 0;
  for (size_t i = 0; i < n; ++i) {
    Request* const r = batch[i];
    // Batched-stage expiry: the deadline passed between collection and
    // boarding — short-circuit before the encode stage.
    if (r->deadline.expired(now)) {
      r->queue_ms = Ms(now - r->admit_time);
      Complete(r,
               Status::DeadlineExceeded("deadline expired before execution"));
      continue;
    }
    r->queue_ms = Ms(now - r->admit_time);
    const size_t slot = scan->Board(*r->query, r->options.k);
    if (slot >= rider_meta_.size()) rider_meta_.resize(slot + 1);
    rider_meta_[slot] = RiderMeta{r, now};
    ++boarded;
  }
  if (boarded > 0) {
    // Each boarding group is one "batch" in SLO terms: the cohort whose
    // corpus stream is shared.
    BatchesCounter()->Increment();
    BatchSizeHistogram()->Record(static_cast<double>(boarded));
  }
  return boarded;
}

void QueryService::RunStreamScan(core::EmbeddingSearcher::StreamScan* scan,
                                 Request** batch, size_t n) {
  BoardGroup(scan, batch, n);
  while (!scan->empty()) {
    done_.clear();
    scan->Step(&done_);
    if (!done_.empty()) {
      const auto now = std::chrono::steady_clock::now();
      for (const size_t slot : done_) {
        Request* const r = rider_meta_[slot].req;
        scan->Harvest(slot, &r->result);
        r->exec_ms = Ms(now - rider_meta_[slot].boarded);
        if (r->deadline.expired(now)) {
          // Executed, but too late to count: DeadlineExceeded for the
          // caller, expired (not goodput) for SLO accounting.
          Complete(r, Status::DeadlineExceeded(
                          "deadline expired during execution"));
        } else {
          Complete(r, Status::OK());
        }
      }
    }
    // Board new arrivals between tiles — the cooperative move that keeps
    // a low-rate arrival from waiting out the whole in-flight pass. A
    // stale session (snapshot republished underneath) stops boarding and
    // drains; the dispatcher loop reopens against the fresh snapshot.
    if (scan->active() < config_.batcher.max_batch && !scan->stale()) {
      size_t num_expired = 0;
      const size_t m = batcher_.TryCollect(
          batch_.data(), config_.batcher.max_batch - scan->active(),
          expired_.data(), expired_.size(), &num_expired);
      if (num_expired > 0) {
        const auto now = std::chrono::steady_clock::now();
        for (size_t i = 0; i < num_expired; ++i) {
          // Queue-stage expiry, same as the dispatcher loop's sweep.
          Request* const r = expired_[i];
          r->queue_ms = Ms(now - r->admit_time);
          Complete(r, Status::DeadlineExceeded("deadline expired in queue"));
        }
      }
      if (m > 0) BoardGroup(scan, batch_.data(), m);
    }
  }
}

void QueryService::ExecuteBatch(Request** batch, size_t n) {
  const auto collected = std::chrono::steady_clock::now();
  size_t i = 0;
  while (i < n) {
    Request* const r0 = batch[i];
    // Batched-stage expiry: the deadline passed between collection and
    // execution — short-circuit before the encode stage.
    if (r0->deadline.expired(collected)) {
      r0->queue_ms = Ms(collected - r0->admit_time);
      Complete(r0,
               Status::DeadlineExceeded("deadline expired before execution"));
      ++i;
      continue;
    }
    // Maximal run of batch-compatible requests (same k/ef/nprobe) —
    // FIFO order is preserved across runs.
    size_t j = i + 1;
    while (j < n && !batch[j]->deadline.expired(collected) &&
           SameExecOptions(batch[j]->options, r0->options)) {
      ++j;
    }
    const size_t run = j - i;
    for (size_t t = 0; t < run; ++t) {
      Request* const r = batch[i + t];
      r->queue_ms = Ms(collected - r->admit_time);
      query_ptrs_[t] = r->query;
      out_ptrs_[t] = &r->result;
    }
    WallTimer timer;
    searcher_->SearchBatchInto(query_ptrs_.data(), run, r0->options,
                               config_.encode_pool, &scratch_,
                               out_ptrs_.data());
    const double exec_ms = timer.ElapsedMillis();
    BatchesCounter()->Increment();
    BatchSizeHistogram()->Record(static_cast<double>(run));
    const auto finished = std::chrono::steady_clock::now();
    for (size_t t = 0; t < run; ++t) {
      Request* const r = batch[i + t];
      r->exec_ms = exec_ms;
      if (r->deadline.expired(finished)) {
        // Executed, but too late to count: the caller gets
        // DeadlineExceeded, and SLO accounting files it as expired, not
        // goodput.
        Complete(r, Status::DeadlineExceeded(
                        "deadline expired during execution"));
      } else {
        Complete(r, Status::OK());
      }
    }
    i = j;
  }
}

void QueryService::Complete(Request* r, Status status) {
  r->total_ms = Ms(std::chrono::steady_clock::now() - r->admit_time);
  r->status = std::move(status);
  if (r->status.ok()) {
    CompletedCounter()->Increment();
  } else if (r->status.code() == StatusCode::kDeadlineExceeded) {
    ExpiredCounter()->Increment();
  }
  QueueWaitHistogram()->Record(r->queue_ms);
  ExecuteHistogram()->Record(r->exec_ms);
  TotalHistogram()->Record(r->total_ms);
  // Callback last, with no locks held; after it fires the node belongs to
  // the caller again.
  r->done(r);
}

}  // namespace serve
}  // namespace deepjoin
