#include "serve/batcher.h"

#include <algorithm>

namespace deepjoin {
namespace serve {

namespace {

std::chrono::nanoseconds MillisToNanos(double ms) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

Batcher::Batcher(const BatcherConfig& config) : config_(config) {
  DJ_CHECK(config_.max_queue > 0);
  DJ_CHECK(config_.max_batch > 0);
}

Status Batcher::Submit(Request* r) {
  // Deadline gate first: an already-expired request never even queues
  // (the metrics-visible guarantee that expiry short-circuits before any
  // downstream work).
  if (r->deadline.expired()) {
    return Status::DeadlineExceeded("expired before admission");
  }
  r->admit_time = std::chrono::steady_clock::now();
  r->next = nullptr;
  {
    MutexLock lock(mu_);
    if (stopped_) {
      return Status::FailedPrecondition("serving stopped");
    }
    if (depth_ >= config_.max_queue) {
      return Status::ResourceExhausted("admission queue full");
    }
    if (tail_ != nullptr) {
      tail_->next = r;
    } else {
      head_ = r;
    }
    tail_ = r;
    ++depth_;
  }
  cv_.NotifyOne();
  return Status::OK();
}

void Batcher::SweepExpiredLocked(std::chrono::steady_clock::time_point now,
                                 Request** expired, size_t expired_cap,
                                 size_t* num_expired) {
  // Requests whose deadline passed while queued must short-circuit, not
  // ride along into (or hold up) a batch.
  if (depth_ == 0 || *num_expired >= expired_cap) return;
  Request* prev = nullptr;
  Request* r = head_;
  while (r != nullptr && *num_expired < expired_cap) {
    Request* const next = r->next;
    if (r->deadline.expired(now)) {
      if (prev != nullptr) {
        prev->next = next;
      } else {
        head_ = next;
      }
      if (r == tail_) tail_ = prev;
      --depth_;
      r->next = nullptr;
      expired[(*num_expired)++] = r;
    } else {
      prev = r;
    }
    r = next;
  }
}

size_t Batcher::TakeLocked(Request** batch, size_t max_n) {
  const size_t n = std::min(depth_, max_n);
  for (size_t i = 0; i < n; ++i) {
    Request* const r = head_;
    head_ = r->next;
    r->next = nullptr;
    batch[i] = r;
  }
  if (head_ == nullptr) tail_ = nullptr;
  depth_ -= n;
  return n;
}

size_t Batcher::CollectBatch(Request** batch, size_t batch_cap,
                             Request** expired, size_t expired_cap,
                             size_t* num_expired) {
  *num_expired = 0;
  const size_t max_batch = std::min(config_.max_batch, batch_cap);
  const auto idle_tick = MillisToNanos(config_.idle_poll_ms);
  MutexLock lock(mu_);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    SweepExpiredLocked(now, expired, expired_cap, num_expired);
    // Expirations return immediately (possibly with an empty batch): the
    // caller completes them without waiting out a batching window.
    if (*num_expired > 0 || depth_ >= max_batch ||
        (stopped_ && depth_ > 0)) {
      return TakeLocked(batch, max_batch);
    }
    if (depth_ > 0) {
      // Flush window: the oldest request's max_wait_ms, clipped by the
      // earliest deadline in the queue (never wait past either).
      auto wake = head_->admit_time + MillisToNanos(config_.max_wait_ms);
      for (const Request* r = head_; r != nullptr; r = r->next) {
        if (!r->deadline.is_infinite()) {
          wake = std::min(wake, r->deadline.time_point());
        }
      }
      if (now >= wake) {
        return TakeLocked(batch, max_batch);
      }
      (void)cv_.WaitFor(mu_, wake - now);
      continue;
    }
    if (stopped_) return 0;  // drained
    // Idle: bounded tick, then re-check (stop/submit both notify, the
    // bound just guarantees forward progress regardless).
    (void)cv_.WaitFor(mu_, idle_tick);
  }
}

size_t Batcher::TryCollect(Request** batch, size_t batch_cap,
                           Request** expired, size_t expired_cap,
                           size_t* num_expired) {
  *num_expired = 0;
  const size_t max_batch = std::min(config_.max_batch, batch_cap);
  MutexLock lock(mu_);
  SweepExpiredLocked(std::chrono::steady_clock::now(), expired, expired_cap,
                     num_expired);
  return TakeLocked(batch, max_batch);
}

void Batcher::Stop() {
  {
    MutexLock lock(mu_);
    stopped_ = true;
  }
  cv_.NotifyAll();
}

size_t Batcher::depth() const {
  MutexLock lock(mu_);
  return depth_;
}

bool Batcher::stopped() const {
  MutexLock lock(mu_);
  return stopped_;
}

}  // namespace serve
}  // namespace deepjoin
