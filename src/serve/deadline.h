// Request deadlines for the serving layer (DESIGN.md §13). A Deadline is
// an absolute steady-clock time point: it travels with the request through
// admission, batching, and execution, and every stage checks it — an
// expired request short-circuits with Status::DeadlineExceeded before any
// further work (in particular, before the encode stage).
#ifndef DEEPJOIN_SERVE_DEADLINE_H_
#define DEEPJOIN_SERVE_DEADLINE_H_

#include <chrono>

namespace deepjoin {
namespace serve {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  /// Default: no deadline (never expires).
  constexpr Deadline() : tp_(TimePoint::max()) {}
  static constexpr Deadline Infinite() { return Deadline(); }
  static constexpr Deadline At(TimePoint tp) { return Deadline(tp); }
  /// `ms` from now. Non-positive values produce an already-expired
  /// deadline (useful in tests).
  static Deadline AfterMillis(double ms) {
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(ms)));
  }

  constexpr bool is_infinite() const { return tp_ == TimePoint::max(); }
  bool expired(TimePoint now = Clock::now()) const {
    return !is_infinite() && now >= tp_;
  }
  constexpr TimePoint time_point() const { return tp_; }
  /// Time left; zero when expired, Clock::duration::max() when infinite.
  Clock::duration remaining(TimePoint now = Clock::now()) const {
    if (is_infinite()) return Clock::duration::max();
    return now >= tp_ ? Clock::duration::zero() : tp_ - now;
  }

 private:
  explicit constexpr Deadline(TimePoint tp) : tp_(tp) {}
  TimePoint tp_;
};

}  // namespace serve
}  // namespace deepjoin

#endif  // DEEPJOIN_SERVE_DEADLINE_H_
