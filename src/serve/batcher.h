// Adaptive request batcher (DESIGN.md §13): the admission queue and flush
// state machine of the serving layer, free of threads of its own. Clients
// Submit() intrusive Request nodes (bounded queue — admission control);
// the dispatcher thread calls CollectBatch(), which blocks (time-bounded
// waits only) until one of the flush conditions fires:
//
//   - size:      max_batch requests are waiting (throughput at load),
//   - wait:      the oldest request has waited max_wait_ms (latency floor
//                at low load),
//   - deadline:  the earliest per-request deadline in the queue is about
//                to pass (the batcher never waits past it),
//   - drain:     Stop() was called — whatever is queued flushes now.
//
// The steady-state dispatch path — Submit on the client thread,
// CollectBatch on the dispatcher — allocates nothing: the queue is an
// intrusive list threaded through caller-owned Request nodes, and batches
// land in a caller-provided array.
#ifndef DEEPJOIN_SERVE_BATCHER_H_
#define DEEPJOIN_SERVE_BATCHER_H_

#include <chrono>
#include <cstddef>

#include "core/searcher.h"
#include "serve/deadline.h"
#include "util/mutex.h"
#include "util/status.h"

namespace deepjoin {
namespace serve {

/// One in-flight query. Caller-owned (stack or pool): the serving layer
/// never copies or allocates request state, it only threads the node
/// through its intrusive queue. The node must stay alive until `done`
/// fires; every admitted request gets exactly one completion.
struct Request {
  // ---- filled by the caller before Submit ----
  const lake::Column* query = nullptr;
  core::SearchOptions options;  ///< collect_stats is forced off by the service
  Deadline deadline;
  /// Completion callback, invoked with NO locks held (dispatcher thread).
  void (*done)(Request* self) = nullptr;
  void* ctx = nullptr;  ///< caller cookie for `done`

  // ---- filled by the service before `done` fires ----
  Status status;  ///< OK, DeadlineExceeded, ... (`result` valid when OK)
  core::EmbeddingSearcher::SearchResult result;
  // Per-request latency record — the serving layer's result surface, the
  // same numbers it files into the dj_serve_* histograms (the instrumented
  // path the adhoc-timing rule guards).
  double queue_ms = 0.0;  ///< admission -> batch collection  // dj_lint: allow(adhoc-timing)
  double exec_ms = 0.0;   ///< batch execution (shared)  // dj_lint: allow(adhoc-timing)
  double total_ms = 0.0;  ///< admission -> completion  // dj_lint: allow(adhoc-timing)

  // ---- internal (serving layer) ----
  std::chrono::steady_clock::time_point admit_time{};
  Request* next = nullptr;
};

struct BatcherConfig {
  /// Admission-queue depth bound; Submit past it returns
  /// ResourceExhausted (backpressure instead of unbounded latency).
  size_t max_queue = 256;
  /// Flush as soon as this many requests are waiting.
  size_t max_batch = 32;
  /// Flush once the oldest queued request has waited this long — bounds
  /// the latency cost of batching at low offered rates. (Config duration,
  /// not a timing surface.)
  double max_wait_ms = 1.0;  // dj_lint: allow(adhoc-timing)
  /// Idle-tick bound for the dispatcher's empty-queue wait. Every wait in
  /// the serving layer is time-bounded (dj_lint `untimed-wait-in-serve`);
  /// this is the period at which an idle dispatcher re-checks for stop.
  double idle_poll_ms = 50.0;  // dj_lint: allow(adhoc-timing)
};

class Batcher {
 public:
  explicit Batcher(const BatcherConfig& config);
  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Admission. Never blocks. Returns:
  ///   - DeadlineExceeded when the request is already expired (it is NOT
  ///     enqueued — the short-circuit happens before any queueing),
  ///   - ResourceExhausted when max_queue requests are already waiting,
  ///   - FailedPrecondition after Stop(),
  ///   - OK otherwise: the node is queued until a CollectBatch takes it.
  [[nodiscard]] Status Submit(Request* r);

  /// Dispatcher side: blocks (time-bounded waits only) until a flush
  /// condition fires, then moves up to min(max_batch, batch_cap) requests
  /// into `batch[0..return]` in FIFO order. Requests whose deadline passed
  /// while queued are moved (up to expired_cap) into
  /// `expired[0..*num_expired]` instead — their status is NOT set; the
  /// caller completes them without executing. May return 0 with
  /// *num_expired > 0 (only expirations this round). Returns 0 with
  /// *num_expired == 0 only when stopped and fully drained.
  size_t CollectBatch(Request** batch, size_t batch_cap, Request** expired,
                      size_t expired_cap, size_t* num_expired);

  /// Non-blocking variant for the streaming dispatcher (DESIGN.md §13):
  /// sweeps queue-stage expirations and takes up to min(max_batch,
  /// batch_cap) waiting requests RIGHT NOW — no flush-window wait. While
  /// a cooperative shared scan is running, arrivals board at the next
  /// tile boundary; holding them for a batching window would only add
  /// latency. Returns the batch size; 0 with *num_expired == 0 means the
  /// queue was empty.
  size_t TryCollect(Request** batch, size_t batch_cap, Request** expired,
                    size_t expired_cap, size_t* num_expired);

  /// Stops admissions and wakes the dispatcher; queued requests still
  /// flush (drain) through subsequent CollectBatch calls.
  void Stop();

  size_t depth() const;
  bool stopped() const;

 private:
  /// Moves requests whose deadline passed while queued (up to
  /// expired_cap) out of the queue into `expired`, advancing
  /// *num_expired. They short-circuit instead of riding into a batch.
  void SweepExpiredLocked(std::chrono::steady_clock::time_point now,
                          Request** expired, size_t expired_cap,
                          size_t* num_expired) DJ_REQUIRES(mu_);
  /// Pops up to `max_n` requests FIFO into `batch`; returns how many.
  size_t TakeLocked(Request** batch, size_t max_n) DJ_REQUIRES(mu_);

  const BatcherConfig config_;

  /// The admission queue: one lock, held for pointer surgery only.
  mutable Mutex mu_{"serve.batcher", rank::kServeBatcher};
  CondVar cv_;
  Request* head_ DJ_GUARDED_BY(mu_) = nullptr;
  Request* tail_ DJ_GUARDED_BY(mu_) = nullptr;
  size_t depth_ DJ_GUARDED_BY(mu_) = 0;
  bool stopped_ DJ_GUARDED_BY(mu_) = false;
};

}  // namespace serve
}  // namespace deepjoin

#endif  // DEEPJOIN_SERVE_BATCHER_H_
