// Concurrent query-serving layer (DESIGN.md §13): admission control with
// bounded-queue backpressure, an adaptive batcher that coalesces waiting
// queries into single SearchBatchInto calls, per-request deadlines
// enforced at every stage, and SLO accounting through MetricsRegistry
// (dj_serve_* counters and latency histograms, exported by the existing
// JSON/Prometheus snapshot path).
//
// Shape: clients Submit() caller-owned Request nodes (or use the blocking
// Query() wrapper); one dispatcher thread loops CollectBatch -> deadline
// re-check -> execution -> completions. The steady-state dispatch path
// allocates nothing: requests thread through intrusive queues, batches
// land in preallocated arrays, and the searcher scratch reuses capacity
// across batches.
//
// Execution takes one of two shapes. On a flat backend the dispatcher
// drives a cooperative shared scan (EmbeddingSearcher::StreamScan): the
// corpus is scored one tile at a time, completed riders are harvested and
// new arrivals board between tiles — so at low offered rates a query never
// waits out a full in-flight corpus pass (the "don't tax the idle case"
// half of the BENCH_serve acceptance bar), while at load every rider on a
// tile shares its corpus stream exactly like the batched scorer. Other
// backends execute collected batches whole through SearchBatchInto.
#ifndef DEEPJOIN_SERVE_QUERY_SERVICE_H_
#define DEEPJOIN_SERVE_QUERY_SERVICE_H_

#include <thread>
#include <vector>

#include "core/searcher.h"
#include "serve/batcher.h"
#include "serve/deadline.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace deepjoin {
namespace serve {

struct QueryServiceConfig {
  BatcherConfig batcher;
  /// Optional pool for the batch-encode stage (nullptr = encode inline on
  /// the dispatcher thread — right for single-core hosts).
  ThreadPool* encode_pool = nullptr;
};

class QueryService {
 public:
  /// `searcher` must have an index (BuildIndex/AddColumn/OpenLive) before
  /// the first query executes, and must outlive the service.
  QueryService(core::EmbeddingSearcher* searcher,
               const QueryServiceConfig& config);
  /// Stops and drains if still running.
  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Starts the dispatcher thread. Requests submitted before Start()
  /// queue up (subject to the same admission bounds) and execute once the
  /// dispatcher runs.
  void Start();

  /// Stops admissions, drains the queue (every admitted request completes
  /// — executed or DeadlineExceeded), and joins the dispatcher.
  void Stop();

  /// Async admission: on OK the node is owned by the service until its
  /// `done` callback fires (exactly once, with no locks held). Errors —
  /// ResourceExhausted (queue full), DeadlineExceeded (already expired;
  /// never enqueued), FailedPrecondition (stopped) — mean the node was
  /// NOT admitted and `done` will not fire. `r->options.collect_stats` is
  /// forced off (per-query trace trees are incompatible with batched
  /// dispatch; SLO accounting happens through metrics instead).
  [[nodiscard]] Status Submit(Request* r);

  /// Blocking wrapper: submits `req` and waits (time-bounded re-check
  /// loop) for its completion. Returns req->status. The caller owns the
  /// node and may reuse it — result buffers keep their capacity, so a
  /// steady-state client loop allocates nothing.
  [[nodiscard]] Status Query(Request* req);

  /// Convenience blocking query into a fresh result.
  [[nodiscard]] Status Query(const lake::Column& query,
                             const core::SearchOptions& options,
                             Deadline deadline,
                             core::EmbeddingSearcher::SearchResult* out);

  size_t queue_depth() const { return batcher_.depth(); }

 private:
  void DispatcherLoop();
  void ExecuteBatch(Request** batch, size_t n);
  /// Streaming execution (flat backend): boards `batch`, then loops
  /// Step -> harvest completions -> board new arrivals until the scan
  /// drains. Returns when empty (or when the session goes stale and has
  /// drained — the caller reopens against the fresh snapshot).
  void RunStreamScan(core::EmbeddingSearcher::StreamScan* scan,
                     Request** batch, size_t n);
  /// Boards up to `n` requests onto the scan (deadline-gated: expired
  /// requests complete without touching encode). Returns boarded count.
  size_t BoardGroup(core::EmbeddingSearcher::StreamScan* scan,
                    Request** batch, size_t n);
  /// Sets status/metrics and fires `done`. `code` selects the SLO bucket.
  void Complete(Request* r, Status status);

  core::EmbeddingSearcher* const searcher_;
  const QueryServiceConfig config_;
  Batcher batcher_;
  std::thread dispatcher_;

  /// Lifecycle state (admission itself is gated inside the batcher).
  mutable Mutex mu_{"searcher.serve_queue", rank::kServeQueue};
  bool started_ DJ_GUARDED_BY(mu_) = false;
  bool stopping_ DJ_GUARDED_BY(mu_) = false;

  // ---- dispatcher-thread state (preallocated; no per-batch allocation) ----
  std::vector<Request*> batch_;
  std::vector<Request*> expired_;
  std::vector<const lake::Column*> query_ptrs_;
  std::vector<core::EmbeddingSearcher::SearchResult*> out_ptrs_;
  core::EmbeddingSearcher::BatchScratch scratch_;
  // Streaming-path state: rider slot -> its request and boarding time
  // (slots are bounded by max_batch — boarding stops at capacity).
  struct RiderMeta {
    Request* req = nullptr;
    std::chrono::steady_clock::time_point boarded{};
  };
  std::vector<RiderMeta> rider_meta_;
  std::vector<size_t> done_;  ///< completed-rider scratch
};

}  // namespace serve
}  // namespace deepjoin

#endif  // DEEPJOIN_SERVE_QUERY_SERVICE_H_
