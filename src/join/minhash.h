// MinHash sketches (Broder, 1997) over token sets. Substrate for LSH
// Ensemble.
#ifndef DEEPJOIN_JOIN_MINHASH_H_
#define DEEPJOIN_JOIN_MINHASH_H_

#include <vector>

#include "util/common.h"
#include "util/hash.h"

namespace deepjoin {
namespace join {

/// num_perm independent min-wise hash values of a token set.
class MinHashSignature {
 public:
  MinHashSignature() = default;

  static MinHashSignature Compute(const std::vector<u32>& tokens,
                                  int num_perm, u64 seed = 0x5151) {
    MinHashSignature sig;
    sig.values_.assign(num_perm, ~0ULL);
    for (u32 t : tokens) {
      for (int p = 0; p < num_perm; ++p) {
        const u64 h = SeededHash(static_cast<u64>(t), seed + p);
        if (h < sig.values_[p]) sig.values_[p] = h;
      }
    }
    return sig;
  }

  /// Unbiased Jaccard estimate: fraction of agreeing permutations.
  double EstimateJaccard(const MinHashSignature& other) const {
    DJ_CHECK(values_.size() == other.values_.size() && !values_.empty());
    size_t agree = 0;
    for (size_t i = 0; i < values_.size(); ++i) {
      if (values_[i] == other.values_[i]) ++agree;
    }
    return static_cast<double>(agree) / static_cast<double>(values_.size());
  }

  const std::vector<u64>& values() const { return values_; }
  int num_perm() const { return static_cast<int>(values_.size()); }

 private:
  std::vector<u64> values_;
};

}  // namespace join
}  // namespace deepjoin

#endif  // DEEPJOIN_JOIN_MINHASH_H_
