// Exact joinability definitions (paper §2.1) and brute-force top-k scans
// used as ground truth for Precision@k / NDCG@k.
//
// Equi-joinability (Def 2.1):  jn(Q,X) = |Q ∩ X| / |Q|  over distinct cells.
// Semantic-joinability (Def 2.3): the fraction of Q's cell vectors having a
// vector in X within distance τ.
#ifndef DEEPJOIN_JOIN_JOINABILITY_H_
#define DEEPJOIN_JOIN_JOINABILITY_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lake/column.h"
#include "text/fasttext.h"
#include "util/top_k.h"

namespace deepjoin {
namespace join {

/// Global cell-value dictionary: every distinct cell string in the
/// repository gets a token id; doc frequencies (number of columns holding
/// the token) drive JOSIE's prefix ordering and DeepJoin's frequency-based
/// cell selection (§3.2).
class CellDictionary {
 public:
  /// Returns the id of `cell`, assigning a fresh one if unseen.
  u32 GetOrAssign(const std::string& cell);
  /// Lookup without assignment (queries may contain unseen cells).
  std::optional<u32> Lookup(const std::string& cell) const;

  void BumpDocFreq(u32 token) {
    if (token >= doc_freq_.size()) doc_freq_.resize(token + 1, 0);
    ++doc_freq_[token];
  }
  u32 DocFreq(u32 token) const {
    return token < doc_freq_.size() ? doc_freq_[token] : 0;
  }
  size_t size() const { return ids_.size(); }

 private:
  std::unordered_map<std::string, u32> ids_;
  std::vector<u32> doc_freq_;
};

/// A column as a set of token ids, sorted ascending. `query_size` keeps the
/// true distinct-cell count including cells absent from the dictionary
/// (those can never match but still appear in jn's denominator).
struct TokenSet {
  std::vector<u32> tokens;  // sorted, unique
  size_t query_size = 0;
};

/// Repository tokenized for equi-join processing.
class TokenizedRepository {
 public:
  static TokenizedRepository Build(const lake::Repository& repo);

  /// Encodes a query column against the frozen dictionary.
  TokenSet EncodeQuery(const lake::Column& query) const;

  const std::vector<TokenSet>& columns() const { return columns_; }
  const CellDictionary& dict() const { return dict_; }
  size_t size() const { return columns_.size(); }

 private:
  CellDictionary dict_;
  std::vector<TokenSet> columns_;
};

/// |a ∩ b| for sorted unique token vectors.
size_t SetOverlap(const std::vector<u32>& a, const std::vector<u32>& b);

/// Equi-joinability jn(Q, X) with Q the query TokenSet.
double EquiJoinability(const TokenSet& query, const TokenSet& target);

/// Exact top-k equi-joinable columns by brute-force scan (ground truth).
std::vector<Scored> ExactEquiTopK(const TokenizedRepository& repo,
                                  const TokenSet& query, size_t k);

/// A column modeled as a multiset of token ids (sorted, duplicates kept),
/// for the one-to-many / many-to-many extension of §2.1.
struct TokenMultiset {
  std::vector<u32> tokens;  // sorted, duplicates preserved
};

/// Builds the multiset form of a raw column against a (mutable) dictionary.
TokenMultiset TokenizeMultiset(const lake::Column& column,
                               CellDictionary* dict);

/// The §2.1 multiset extension: joinability measured by the number of join
/// *results* — sum over shared values v of count_Q(v) * count_X(v) —
/// normalized by |Q| * |X| (both multiset sizes), supporting one-to-many,
/// many-to-one and many-to-many joins. Returns 0 for empty inputs.
double MultisetJoinability(const TokenMultiset& q, const TokenMultiset& x);

// ---- semantic side ----

/// Cell vectors of every repository column, stored contiguously.
class ColumnVectorStore {
 public:
  static ColumnVectorStore Build(const lake::Repository& repo,
                                 const FastTextEmbedder& embedder);

  /// Embeds a query column's cells (flat [n x dim]).
  static std::vector<float> EmbedColumn(const lake::Column& column,
                                        const FastTextEmbedder& embedder);

  const float* column_vectors(u32 id) const {
    return data_.data() + offsets_[id];
  }
  size_t column_count(u32 id) const { return counts_[id]; }
  size_t num_columns() const { return counts_.size(); }
  int dim() const { return dim_; }
  size_t total_vectors() const { return data_.size() / dim_; }
  const float* all_vectors() const { return data_.data(); }
  /// Column owning the `global_index`-th vector.
  u32 OwnerOf(size_t global_index) const { return owners_[global_index]; }

 private:
  int dim_ = 0;
  std::vector<float> data_;
  std::vector<size_t> offsets_;  // per column, in floats
  std::vector<size_t> counts_;   // per column, in vectors
  std::vector<u32> owners_;      // per vector
};

/// Semantic joinability of flat vector multisets under threshold `tau`.
double SemanticJoinability(const float* q, size_t nq, const float* x,
                           size_t nx, int dim, float tau);

/// Exact top-k semantically joinable columns by brute-force scan.
std::vector<Scored> ExactSemanticTopK(const ColumnVectorStore& store,
                                      const float* q, size_t nq, float tau,
                                      size_t k);

}  // namespace join
}  // namespace deepjoin

#endif  // DEEPJOIN_JOIN_JOINABILITY_H_
