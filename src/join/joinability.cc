#include "join/joinability.h"

#include <algorithm>

#include "util/kernels.h"

namespace deepjoin {
namespace join {

u32 CellDictionary::GetOrAssign(const std::string& cell) {
  auto [it, inserted] = ids_.try_emplace(cell, static_cast<u32>(ids_.size()));
  return it->second;
}

std::optional<u32> CellDictionary::Lookup(const std::string& cell) const {
  auto it = ids_.find(cell);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

TokenizedRepository TokenizedRepository::Build(const lake::Repository& repo) {
  TokenizedRepository out;
  out.columns_.reserve(repo.size());
  for (const auto& col : repo.columns()) {
    TokenSet ts;
    ts.tokens.reserve(col.cells.size());
    for (const auto& cell : col.cells) {
      ts.tokens.push_back(out.dict_.GetOrAssign(cell));
    }
    std::sort(ts.tokens.begin(), ts.tokens.end());
    ts.tokens.erase(std::unique(ts.tokens.begin(), ts.tokens.end()),
                    ts.tokens.end());
    ts.query_size = ts.tokens.size();
    for (u32 t : ts.tokens) out.dict_.BumpDocFreq(t);
    out.columns_.push_back(std::move(ts));
  }
  return out;
}

TokenSet TokenizedRepository::EncodeQuery(const lake::Column& query) const {
  TokenSet ts;
  size_t unknown = 0;
  for (const auto& cell : query.cells) {
    if (auto id = dict_.Lookup(cell)) {
      ts.tokens.push_back(*id);
    } else {
      ++unknown;
    }
  }
  std::sort(ts.tokens.begin(), ts.tokens.end());
  ts.tokens.erase(std::unique(ts.tokens.begin(), ts.tokens.end()),
                  ts.tokens.end());
  // Cells are already distinct within a Column, so the true distinct count
  // is matched tokens plus unseen cells.
  ts.query_size = ts.tokens.size() + unknown;
  return ts;
}

size_t SetOverlap(const std::vector<u32>& a, const std::vector<u32>& b) {
  size_t i = 0, j = 0, n = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++n;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return n;
}

double EquiJoinability(const TokenSet& query, const TokenSet& target) {
  if (query.query_size == 0) return 0.0;
  return static_cast<double>(SetOverlap(query.tokens, target.tokens)) /
         static_cast<double>(query.query_size);
}

std::vector<Scored> ExactEquiTopK(const TokenizedRepository& repo,
                                  const TokenSet& query, size_t k) {
  TopK top(k);
  for (size_t i = 0; i < repo.size(); ++i) {
    top.Push(EquiJoinability(query, repo.columns()[i]),
             static_cast<u32>(i));
  }
  return top.Take();
}

TokenMultiset TokenizeMultiset(const lake::Column& column,
                               CellDictionary* dict) {
  TokenMultiset out;
  out.tokens.reserve(column.cells.size());
  for (const auto& cell : column.cells) {
    out.tokens.push_back(dict->GetOrAssign(cell));
  }
  std::sort(out.tokens.begin(), out.tokens.end());
  return out;
}

double MultisetJoinability(const TokenMultiset& q, const TokenMultiset& x) {
  if (q.tokens.empty() || x.tokens.empty()) return 0.0;
  // Merge over sorted runs: each shared value v contributes
  // count_q(v) * count_x(v) join results.
  size_t i = 0, j = 0;
  u64 join_results = 0;
  while (i < q.tokens.size() && j < x.tokens.size()) {
    if (q.tokens[i] < x.tokens[j]) {
      ++i;
    } else if (q.tokens[i] > x.tokens[j]) {
      ++j;
    } else {
      const u32 v = q.tokens[i];
      u64 cq = 0, cx = 0;
      while (i < q.tokens.size() && q.tokens[i] == v) {
        ++cq;
        ++i;
      }
      while (j < x.tokens.size() && x.tokens[j] == v) {
        ++cx;
        ++j;
      }
      join_results += cq * cx;
    }
  }
  return static_cast<double>(join_results) /
         (static_cast<double>(q.tokens.size()) *
          static_cast<double>(x.tokens.size()));
}

ColumnVectorStore ColumnVectorStore::Build(const lake::Repository& repo,
                                           const FastTextEmbedder& embedder) {
  ColumnVectorStore store;
  store.dim_ = embedder.dim();
  size_t total = 0;
  for (const auto& col : repo.columns()) total += col.cells.size();
  store.data_.resize(total * static_cast<size_t>(store.dim_));
  store.offsets_.reserve(repo.size());
  store.counts_.reserve(repo.size());
  store.owners_.reserve(total);
  size_t offset = 0;
  for (const auto& col : repo.columns()) {
    store.offsets_.push_back(offset);
    store.counts_.push_back(col.cells.size());
    for (const auto& cell : col.cells) {
      embedder.TextVectorInto(cell, store.data_.data() + offset);
      store.owners_.push_back(col.id);
      offset += static_cast<size_t>(store.dim_);
    }
  }
  return store;
}

std::vector<float> ColumnVectorStore::EmbedColumn(
    const lake::Column& column, const FastTextEmbedder& embedder) {
  const int dim = embedder.dim();
  std::vector<float> out(column.cells.size() * static_cast<size_t>(dim));
  for (size_t i = 0; i < column.cells.size(); ++i) {
    embedder.TextVectorInto(column.cells[i],
                            out.data() + i * static_cast<size_t>(dim));
  }
  return out;
}

double SemanticJoinability(const float* q, size_t nq, const float* x,
                           size_t nx, int dim, float tau) {
  if (nq == 0) return 0.0;
  const float tau2 = tau * tau;
  size_t matched = 0;
  for (size_t i = 0; i < nq; ++i) {
    const float* qv = q + i * static_cast<size_t>(dim);
    for (size_t j = 0; j < nx; ++j) {
      const float* xv = x + j * static_cast<size_t>(dim);
      // Full vectorized distance per pair (documented change: this used to
      // early-bail a double-precision scalar loop once the partial sum
      // crossed tau^2 — the SIMD kernel is faster than the bail).
      if (kern::SquaredL2(qv, xv, dim) <= tau2) {
        ++matched;
        break;  // one match in X suffices for this query vector
      }
    }
  }
  return static_cast<double>(matched) / static_cast<double>(nq);
}

std::vector<Scored> ExactSemanticTopK(const ColumnVectorStore& store,
                                      const float* q, size_t nq, float tau,
                                      size_t k) {
  TopK top(k);
  for (size_t i = 0; i < store.num_columns(); ++i) {
    const double jn =
        SemanticJoinability(q, nq, store.column_vectors(static_cast<u32>(i)),
                            store.column_count(static_cast<u32>(i)),
                            store.dim(), tau);
    top.Push(jn, static_cast<u32>(i));
  }
  return top.Take();
}

}  // namespace join
}  // namespace deepjoin
