// Set-similarity self-join for training-data preparation (paper §4.1):
// find all directed column pairs (X, Y) with jn(X, Y) >= t. Candidate
// generation runs over an inverted index probed rarest-token-first with a
// size-aware admission bound (prefix-filter flavoured, exact); semantic
// positives come from a brute-force pass with early-exit distance checks
// (the sample the self-join runs on is small by design — the paper uses a
// 30K-column sample of the corpus).
#ifndef DEEPJOIN_JOIN_SETJOIN_H_
#define DEEPJOIN_JOIN_SETJOIN_H_

#include <vector>

#include "join/joinability.h"

namespace deepjoin {
namespace join {

/// A directed positive example: jn(x -> y) = jn.
struct JoinPair {
  u32 x;
  u32 y;
  double jn;
};

/// All ordered pairs (X, Y), X != Y, with equi jn(X, Y) >= t. Exact.
std::vector<JoinPair> EquiSelfJoin(const std::vector<TokenSet>& columns,
                                   double t);

/// All ordered pairs with semantic jn(X, Y) >= t under threshold tau.
/// `store` holds the cell vectors of the training sample.
std::vector<JoinPair> SemanticSelfJoin(const ColumnVectorStore& store,
                                       double t, float tau);

}  // namespace join
}  // namespace deepjoin

#endif  // DEEPJOIN_JOIN_SETJOIN_H_
