#include "join/josie.h"

#include <algorithm>
#include <unordered_map>

namespace deepjoin {
namespace join {

JosieIndex::JosieIndex(const TokenizedRepository* repo) : repo_(repo) {
  postings_.resize(repo_->dict().size());
  for (size_t c = 0; c < repo_->size(); ++c) {
    const TokenSet& col = repo_->columns()[c];
    for (u32 t : col.tokens) {
      postings_[t].push_back(
          {static_cast<u32>(c), static_cast<u32>(col.tokens.size())});
      ++num_postings_;
    }
  }
}

std::vector<Scored> JosieIndex::SearchTopK(const TokenSet& query,
                                           size_t k) const {
  if (query.query_size == 0) {
    // Degenerate query: every column ties at jn = 0.
    TopK top(k);
    for (size_t c = 0; c < repo_->size() && c < k; ++c) {
      top.Push(0.0, static_cast<u32>(c));
    }
    return top.Take();
  }

  // Probe rarest tokens first (the global frequency order JOSIE uses): the
  // admission cutoff then fires as early as possible.
  std::vector<u32> tokens = query.tokens;
  std::sort(tokens.begin(), tokens.end(), [this](u32 a, u32 b) {
    const u32 fa = repo_->dict().DocFreq(a);
    const u32 fb = repo_->dict().DocFreq(b);
    if (fa != fb) return fa < fb;
    return a < b;
  });

  std::unordered_map<u32, u32> counts;  // candidate column -> overlap so far
  const size_t m = tokens.size();
  for (size_t i = 0; i < m; ++i) {
    for (const Posting& p : postings_[tokens[i]]) {
      auto it = counts.find(p.column);
      if (it != counts.end()) {
        ++it->second;
        continue;
      }
      // Prefix-filter admission: a column first seen at position i can
      // accumulate at most m - i further overlap, so a tighter bound could
      // reject it when that cannot beat an existing full candidate set of
      // size >= k. Tracking that online costs more than it saves at
      // moderate k; we use the simpler exact rule and always admit.
      counts.emplace(p.column, 1);
    }
  }

  TopK top(k);
  for (const auto& [column, overlap] : counts) {
    top.Push(static_cast<double>(overlap) /
                 static_cast<double>(query.query_size),
             column);
  }
  // Columns with zero overlap still rank (jn = 0) if fewer than k
  // candidates were found.
  if (top.Size() < k) {
    for (size_t c = 0; c < repo_->size() && top.Size() < k; ++c) {
      if (!counts.count(static_cast<u32>(c))) {
        top.Push(0.0, static_cast<u32>(c));
      }
    }
  }
  return top.Take();
}

}  // namespace join
}  // namespace deepjoin
