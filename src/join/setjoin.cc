#include "join/setjoin.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace deepjoin {
namespace join {

std::vector<JoinPair> EquiSelfJoin(const std::vector<TokenSet>& columns,
                                   double t) {
  DJ_CHECK(t > 0.0 && t <= 1.0);
  std::vector<JoinPair> out;
  // Inverted index over all columns, then one counting probe per column
  // against columns with smaller index (each unordered pair examined once).
  u32 max_token = 0;
  for (const auto& c : columns) {
    for (u32 tok : c.tokens) max_token = std::max(max_token, tok + 1);
  }
  std::vector<std::vector<u32>> inverted(max_token);
  std::unordered_map<u32, u32> counts;
  for (u32 x = 0; x < columns.size(); ++x) {
    const auto& xt = columns[x].tokens;
    counts.clear();
    for (u32 tok : xt) {
      for (u32 y : inverted[tok]) ++counts[y];
    }
    for (const auto& [y, overlap] : counts) {
      const double from_x =
          static_cast<double>(overlap) / static_cast<double>(xt.size());
      const double from_y = static_cast<double>(overlap) /
                            static_cast<double>(columns[y].tokens.size());
      if (from_x >= t) out.push_back({x, y, from_x});
      if (from_y >= t) out.push_back({y, x, from_y});
    }
    for (u32 tok : xt) inverted[tok].push_back(x);
  }
  return out;
}

std::vector<JoinPair> SemanticSelfJoin(const ColumnVectorStore& store,
                                       double t, float tau) {
  DJ_CHECK(t > 0.0 && t <= 1.0);
  std::vector<JoinPair> out;
  const size_t n = store.num_columns();
  const int dim = store.dim();
  for (u32 x = 0; x < n; ++x) {
    const float* xv = store.column_vectors(x);
    const size_t nx = store.column_count(x);
    for (u32 y = static_cast<u32>(x) + 1; y < n; ++y) {
      const float* yv = store.column_vectors(y);
      const size_t ny = store.column_count(y);
      const double from_x = SemanticJoinability(xv, nx, yv, ny, dim, tau);
      if (from_x >= t) out.push_back({x, y, from_x});
      const double from_y = SemanticJoinability(yv, ny, xv, nx, dim, tau);
      if (from_y >= t) out.push_back({y, x, from_y});
    }
  }
  return out;
}

}  // namespace join
}  // namespace deepjoin
