// LSH Ensemble (Zhu et al., VLDB 2016) — the approximate equi-join baseline
// (§2.2). The repository is partitioned by set size; each partition keeps
// MinHash signatures and a family of banded LSH tables at several band
// widths r. A containment (jn) threshold is converted per partition to a
// Jaccard threshold using the partition's upper size bound
//   J >= t|Q| / (|Q| + u - t|Q|)
// (the conversion that, as the paper stresses, is loose and the source of
// LSH Ensemble's false positives), the band width whose S-curve midpoint
// best matches is probed, and candidates are verified. Top-k is served by
// the standard adaptation: geometrically lower t until enough verified
// candidates accumulate.
#ifndef DEEPJOIN_JOIN_LSH_ENSEMBLE_H_
#define DEEPJOIN_JOIN_LSH_ENSEMBLE_H_

#include <unordered_map>
#include <vector>

#include "join/joinability.h"
#include "join/minhash.h"
#include "util/top_k.h"

namespace deepjoin {
namespace join {

struct LshEnsembleConfig {
  int num_perm = 64;
  int num_partitions = 8;
  /// Band widths r for which tables are materialised (b = num_perm / r).
  std::vector<int> band_widths = {2, 4, 8};
  /// Top-k adaptation: initial threshold and decay.
  double t_start = 0.95;
  double t_decay = 0.5;
  double t_floor = 0.03;
  /// When false (the faithful default), candidates are *ranked by the
  /// MinHash containment estimate* — the sketch-only behaviour of the
  /// original system, whose estimation error is the source of the low
  /// precision the paper reports. When true, candidates are re-ranked by
  /// exact containment (useful for testing the banding machinery).
  bool exact_verify = false;
  u64 seed = 0x15AE;
};

class LshEnsembleIndex {
 public:
  /// Builds partitions and banded tables. `repo` must outlive the index.
  LshEnsembleIndex(const TokenizedRepository* repo,
                   const LshEnsembleConfig& config);

  /// Thresholded containment search: columns with (estimated) jn >= t,
  /// scored per config.exact_verify (sketch estimate by default).
  std::vector<Scored> SearchThreshold(const TokenSet& query, double t) const;

  /// Top-k adaptation (see config).
  std::vector<Scored> SearchTopK(const TokenSet& query, size_t k) const;

 private:
  struct Partition {
    size_t size_upper = 0;              // max |X| in this partition
    std::vector<u32> columns;           // repo column ids
    std::vector<MinHashSignature> sigs; // aligned with `columns`
    /// band tables: band_tables[r_index][band] : hash -> member offsets.
    std::vector<std::vector<std::unordered_map<u64, std::vector<u32>>>>
        band_tables;
  };

  /// Picks the materialised band width whose S-curve threshold
  /// (1/b)^(1/r) is closest below `jaccard_t`.
  int PickBandWidthIndex(double jaccard_t) const;

  const TokenizedRepository* repo_;
  LshEnsembleConfig config_;
  std::vector<Partition> partitions_;
};

}  // namespace join
}  // namespace deepjoin

#endif  // DEEPJOIN_JOIN_LSH_ENSEMBLE_H_
