// PEXESO (Dong et al., ICDE 2021) — the exact semantic-join baseline
// (§2.2). Cell values are embedded into a metric space; a set of pivot
// vectors is chosen and every data vector stores its pivot distances. A
// grid over the first two pivot distances (cell width τ) plus the
// remaining pivots' triangle-inequality checks prune non-matching vectors
// before exact distance verification; per-column match counts yield the
// semantic joinability, and the top-k columns are returned.
//
// As the paper observes (§2.2), PEXESO's count-threshold pruning does not
// help the top-k formulation, so the search cost is effectively linear in
// |X_V| · |Q| — the behaviour Tables 13-15 exhibit and this implementation
// shares.
#ifndef DEEPJOIN_JOIN_PEXESO_H_
#define DEEPJOIN_JOIN_PEXESO_H_

#include <unordered_map>
#include <vector>

#include "join/joinability.h"
#include "util/top_k.h"

namespace deepjoin {
namespace join {

struct PexesoConfig {
  int num_pivots = 6;
  float tau = 0.9f;
  u64 seed = 0x9E50;
};

class PexesoIndex {
 public:
  /// Builds pivots + grid over `store` (which must outlive the index).
  PexesoIndex(const ColumnVectorStore* store, const PexesoConfig& config);

  /// Exact top-k semantically joinable columns for the query vectors
  /// (flat [nq x dim]).
  std::vector<Scored> SearchTopK(const float* query, size_t nq,
                                 size_t k) const;

  /// PEXESO's *native* thresholded problem (§2.2): all columns with
  /// jn >= t. Here the count bound is a real pruning lever — after
  /// processing i of nq query vectors, a column needs
  /// matched + (nq - i) >= ceil(t * nq) to still qualify, so hopeless
  /// columns stop accumulating work. This is the pruning power the paper
  /// notes "is next to none" under the top-k formulation.
  std::vector<Scored> SearchThreshold(const float* query, size_t nq,
                                      double t) const;

  /// Exact semantic joinability against one column (for verification).
  double Joinability(const float* query, size_t nq, u32 column) const;

  const PexesoConfig& config() const { return config_; }

 private:
  using GridKey = u64;
  GridKey KeyOf(i32 c0, i32 c1) const {
    return (static_cast<u64>(static_cast<u32>(c0)) << 32) |
           static_cast<u32>(c1);
  }

  const ColumnVectorStore* store_;
  PexesoConfig config_;
  std::vector<float> pivots_;      // num_pivots x dim
  std::vector<float> pivot_dist_;  // per vector: num_pivots distances
  std::unordered_map<GridKey, std::vector<u32>> grid_;  // -> vector indices
};

}  // namespace join
}  // namespace deepjoin

#endif  // DEEPJOIN_JOIN_PEXESO_H_
