#include "join/lsh_ensemble.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace deepjoin {
namespace join {

LshEnsembleIndex::LshEnsembleIndex(const TokenizedRepository* repo,
                                   const LshEnsembleConfig& config)
    : repo_(repo), config_(config) {
  // Equi-depth partitioning by set size.
  std::vector<u32> order(repo_->size());
  for (u32 i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](u32 a, u32 b) {
    const size_t sa = repo_->columns()[a].tokens.size();
    const size_t sb = repo_->columns()[b].tokens.size();
    if (sa != sb) return sa < sb;
    return a < b;
  });
  const size_t n = order.size();
  const size_t parts = std::max<size_t>(
      1, std::min<size_t>(config_.num_partitions, n));
  partitions_.resize(parts);
  for (size_t p = 0; p < parts; ++p) {
    const size_t lo = p * n / parts;
    const size_t hi = (p + 1) * n / parts;
    Partition& part = partitions_[p];
    for (size_t i = lo; i < hi; ++i) {
      const u32 col = order[i];
      part.columns.push_back(col);
      part.size_upper =
          std::max(part.size_upper, repo_->columns()[col].tokens.size());
      part.sigs.push_back(MinHashSignature::Compute(
          repo_->columns()[col].tokens, config_.num_perm, config_.seed));
    }
    // Materialise the banded tables for each configured band width.
    part.band_tables.resize(config_.band_widths.size());
    for (size_t ri = 0; ri < config_.band_widths.size(); ++ri) {
      const int r = config_.band_widths[ri];
      const int b = config_.num_perm / r;
      part.band_tables[ri].resize(b);
      for (u32 off = 0; off < part.columns.size(); ++off) {
        const auto& values = part.sigs[off].values();
        for (int band = 0; band < b; ++band) {
          u64 h = 0x1F0Dull + static_cast<u64>(band);
          for (int j = 0; j < r; ++j) {
            h = HashCombine(h, values[static_cast<size_t>(band) * r + j]);
          }
          part.band_tables[ri][band][h].push_back(off);
        }
      }
    }
  }
}

int LshEnsembleIndex::PickBandWidthIndex(double jaccard_t) const {
  // The S-curve of (b bands, r rows) has collision-probability midpoint
  // near (1/b)^(1/r). Prefer the widest r whose midpoint stays below the
  // target (probing cheaper, fewer false positives); fall back to the
  // most permissive table.
  int best = 0;
  double best_mid = -1.0;
  for (size_t ri = 0; ri < config_.band_widths.size(); ++ri) {
    const int r = config_.band_widths[ri];
    const int b = config_.num_perm / r;
    const double mid = std::pow(1.0 / b, 1.0 / r);
    if (mid <= jaccard_t && mid > best_mid) {
      best_mid = mid;
      best = static_cast<int>(ri);
    }
  }
  return best;
}

std::vector<Scored> LshEnsembleIndex::SearchThreshold(const TokenSet& query,
                                                      double t) const {
  std::vector<Scored> results;
  if (query.query_size == 0) return results;
  MinHashSignature qsig =
      MinHashSignature::Compute(query.tokens, config_.num_perm, config_.seed);
  const double q = static_cast<double>(query.query_size);

  std::unordered_set<u32> emitted;
  for (const Partition& part : partitions_) {
    if (part.columns.empty()) continue;
    const double u = static_cast<double>(part.size_upper);
    // Containment-to-Jaccard conversion with this partition's upper bound.
    const double jt = t * q / (q + u - t * q);
    const size_t ri = static_cast<size_t>(PickBandWidthIndex(jt));
    const int r = config_.band_widths[ri];
    const int b = config_.num_perm / r;
    std::unordered_set<u32> candidates;
    for (int band = 0; band < b; ++band) {
      u64 h = 0x1F0Dull + static_cast<u64>(band);
      for (int j = 0; j < r; ++j) {
        h = HashCombine(h, qsig.values()[static_cast<size_t>(band) * r + j]);
      }
      auto it = part.band_tables[ri][band].find(h);
      if (it == part.band_tables[ri][band].end()) continue;
      for (u32 off : it->second) candidates.insert(off);
    }
    for (u32 off : candidates) {
      const u32 col = part.columns[off];
      if (!emitted.insert(col).second) continue;
      double jn;
      if (config_.exact_verify) {
        jn = EquiJoinability(query, repo_->columns()[col]);
      } else {
        // Sketch-only scoring: invert the containment-to-Jaccard
        // conversion with the *estimated* Jaccard. This is where the
        // method's false positives come from (§2.2).
        const double jaccard = qsig.EstimateJaccard(part.sigs[off]);
        const double x = static_cast<double>(
            repo_->columns()[col].tokens.size());
        jn = std::min(1.0, jaccard * (q + x) / (q * (1.0 + jaccard)));
      }
      if (jn >= t) results.push_back({jn, col});
    }
  }
  std::sort(results.begin(), results.end(),
            [](const Scored& a, const Scored& b) { return b < a; });
  return results;
}

std::vector<Scored> LshEnsembleIndex::SearchTopK(const TokenSet& query,
                                                 size_t k) const {
  // The standard top-k adaptation of a thresholded index: sweep t
  // downwards and rank a column by the highest threshold level at which
  // it qualified. Within one level the order is arbitrary — a second
  // source of imprecision on top of the sketch estimate (the paper's
  // "suffers from low precision" observation, §2.2).
  TopK top(k);
  std::unordered_set<u32> seen;
  double t = config_.t_start;
  while (t >= config_.t_floor) {
    for (const Scored& s : SearchThreshold(query, t)) {
      if (seen.insert(s.id).second) top.Push(t, s.id);
    }
    if (top.Size() >= k) break;
    t *= config_.t_decay;
  }
  // Pad with arbitrary columns when the sketch never surfaced k
  // candidates (a real failure mode of the method).
  if (top.Size() < k) {
    for (u32 c = 0; c < repo_->size() && top.Size() < k; ++c) {
      if (seen.insert(c).second) top.Push(0.0, c);
    }
  }
  return top.Take();
}

}  // namespace join
}  // namespace deepjoin
