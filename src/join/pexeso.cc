#include "join/pexeso.h"

#include <algorithm>
#include <cmath>

#include "ann/kmeans.h"

namespace deepjoin {
namespace join {

PexesoIndex::PexesoIndex(const ColumnVectorStore* store,
                         const PexesoConfig& config)
    : store_(store), config_(config) {
  const int dim = store_->dim();
  const size_t nv = store_->total_vectors();
  DJ_CHECK(nv > 0);

  // Pivot selection: k-means centroids over a sample spread the pivots
  // through the occupied region of the space.
  Rng rng(config_.seed);
  const size_t sample_n = std::min<size_t>(nv, 4096);
  std::vector<float> sample(sample_n * static_cast<size_t>(dim));
  const auto idx = rng.SampleIndices(nv, sample_n);
  for (size_t i = 0; i < sample_n; ++i) {
    std::copy(store_->all_vectors() + idx[i] * dim,
              store_->all_vectors() + (idx[i] + 1) * dim,
              sample.begin() + static_cast<long>(i) * dim);
  }
  auto km = ann::KMeans(sample.data(), sample_n, dim, config_.num_pivots, 10,
                        rng);
  pivots_ = std::move(km.centroids);

  // Pivot distances for every data vector + the grid on pivots 0 and 1.
  pivot_dist_.resize(nv * static_cast<size_t>(config_.num_pivots));
  const float inv_tau = 1.0f / config_.tau;
  for (size_t v = 0; v < nv; ++v) {
    const float* vec = store_->all_vectors() + v * dim;
    for (int p = 0; p < config_.num_pivots; ++p) {
      pivot_dist_[v * config_.num_pivots + p] =
          L2Distance(vec, &pivots_[static_cast<size_t>(p) * dim], dim);
    }
    const i32 c0 = static_cast<i32>(
        std::floor(pivot_dist_[v * config_.num_pivots] * inv_tau));
    const i32 c1 = static_cast<i32>(
        std::floor(pivot_dist_[v * config_.num_pivots + 1] * inv_tau));
    grid_[KeyOf(c0, c1)].push_back(static_cast<u32>(v));
  }
}

double PexesoIndex::Joinability(const float* query, size_t nq,
                                u32 column) const {
  return SemanticJoinability(query, nq, store_->column_vectors(column),
                             store_->column_count(column), store_->dim(),
                             config_.tau);
}

std::vector<Scored> PexesoIndex::SearchThreshold(const float* query,
                                                 size_t nq,
                                                 double t) const {
  DJ_CHECK(t > 0.0 && t <= 1.0);
  std::vector<Scored> out;
  if (nq == 0) return out;
  const int dim = store_->dim();
  const int np = config_.num_pivots;
  const float tau = config_.tau;
  const float inv_tau = 1.0f / tau;
  const size_t num_cols = store_->num_columns();
  const u64 required =
      static_cast<u64>(std::ceil(t * static_cast<double>(nq)));

  std::vector<u32> match_count(num_cols, 0);
  std::vector<u32> stamp(num_cols, ~0u);
  std::vector<u8> pruned(num_cols, 0);

  std::vector<float> qdist(np);
  for (size_t qi = 0; qi < nq; ++qi) {
    const size_t remaining = nq - qi;  // incl. the current vector
    const float* qv = query + qi * static_cast<size_t>(dim);
    for (int p = 0; p < np; ++p) {
      qdist[p] = L2Distance(qv, &pivots_[static_cast<size_t>(p) * dim], dim);
    }
    const i32 c0 = static_cast<i32>(std::floor(qdist[0] * inv_tau));
    const i32 c1 = static_cast<i32>(std::floor(qdist[1] * inv_tau));
    for (i32 d0 = c0 - 1; d0 <= c0 + 1; ++d0) {
      for (i32 d1 = c1 - 1; d1 <= c1 + 1; ++d1) {
        auto it = grid_.find(KeyOf(d0, d1));
        if (it == grid_.end()) continue;
        for (u32 v : it->second) {
          const u32 owner = store_->OwnerOf(v);
          // Count-bound pruning: this column can no longer reach the
          // required matches even if every remaining vector matches.
          if (pruned[owner] || stamp[owner] == static_cast<u32>(qi)) {
            continue;
          }
          if (match_count[owner] + remaining < required) {
            pruned[owner] = 1;
            continue;
          }
          const float* vd = &pivot_dist_[static_cast<size_t>(v) * np];
          bool filtered = false;
          for (int p = 0; p < np; ++p) {
            if (std::fabs(qdist[p] - vd[p]) > tau) {
              filtered = true;
              break;
            }
          }
          if (filtered) continue;
          const float* xv =
              store_->all_vectors() + static_cast<size_t>(v) * dim;
          if (L2Distance(qv, xv, dim) <= tau) {
            stamp[owner] = static_cast<u32>(qi);
            ++match_count[owner];
          }
        }
      }
    }
  }
  const double inv_nq = 1.0 / static_cast<double>(nq);
  for (size_t c = 0; c < num_cols; ++c) {
    if (!pruned[c] && match_count[c] >= required) {
      out.push_back({static_cast<double>(match_count[c]) * inv_nq,
                     static_cast<u32>(c)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Scored& a, const Scored& b) { return b < a; });
  return out;
}

std::vector<Scored> PexesoIndex::SearchTopK(const float* query, size_t nq,
                                            size_t k) const {
  const int dim = store_->dim();
  const int np = config_.num_pivots;
  const float tau = config_.tau;
  const float inv_tau = 1.0f / tau;
  const size_t num_cols = store_->num_columns();

  // matched[c] counts query vectors with >=1 match in column c; the stamp
  // ensures each query vector contributes at most once per column.
  std::vector<u32> match_count(num_cols, 0);
  std::vector<u32> stamp(num_cols, ~0u);

  std::vector<float> qdist(np);
  for (size_t qi = 0; qi < nq; ++qi) {
    const float* qv = query + qi * static_cast<size_t>(dim);
    for (int p = 0; p < np; ++p) {
      qdist[p] = L2Distance(qv, &pivots_[static_cast<size_t>(p) * dim], dim);
    }
    // Grid lookup: matching vectors satisfy |d(q,p0) - d(x,p0)| <= tau, so
    // their cell index along each grid axis differs by at most 1.
    const i32 c0 = static_cast<i32>(std::floor(qdist[0] * inv_tau));
    const i32 c1 = static_cast<i32>(std::floor(qdist[1] * inv_tau));
    for (i32 d0 = c0 - 1; d0 <= c0 + 1; ++d0) {
      for (i32 d1 = c1 - 1; d1 <= c1 + 1; ++d1) {
        auto it = grid_.find(KeyOf(d0, d1));
        if (it == grid_.end()) continue;
        for (u32 v : it->second) {
          const u32 owner = store_->OwnerOf(v);
          if (stamp[owner] == static_cast<u32>(qi)) continue;  // matched
          // Triangle-inequality filter on the remaining pivots.
          const float* vd = &pivot_dist_[static_cast<size_t>(v) * np];
          bool pruned = false;
          for (int p = 0; p < np; ++p) {
            if (std::fabs(qdist[p] - vd[p]) > tau) {
              pruned = true;
              break;
            }
          }
          if (pruned) continue;
          // Exact verification.
          const float* xv = store_->all_vectors() +
                            static_cast<size_t>(v) * dim;
          if (L2Distance(qv, xv, dim) <= tau) {
            stamp[owner] = static_cast<u32>(qi);
            ++match_count[owner];
          }
        }
      }
    }
  }

  TopK top(k);
  const double inv_nq = nq > 0 ? 1.0 / static_cast<double>(nq) : 0.0;
  for (size_t c = 0; c < num_cols; ++c) {
    top.Push(static_cast<double>(match_count[c]) * inv_nq,
             static_cast<u32>(c));
  }
  return top.Take();
}

}  // namespace join
}  // namespace deepjoin
