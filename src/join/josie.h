// JOSIE (Zhu et al., SIGMOD 2019) — exact top-k overlap set-similarity
// search over an inverted index, the paper's exact equi-join baseline
// (§2.2). Columns are token sets ordered globally by ascending document
// frequency; the searcher probes postings lists rarest-token-first,
// accumulates exact overlap counts, and applies the prefix-filter
// admission bound: once the number of unread query tokens cannot reach the
// required overlap for a new candidate, no new candidates are admitted
// (existing ones keep counting). This reproduces JOSIE's probe/count core
// and its linear-in-(|Q| x postings) cost shape; JOSIE's cost-model-driven
// probe/verify interleaving is an optimization we document but do not
// replicate (it does not change exactness).
#ifndef DEEPJOIN_JOIN_JOSIE_H_
#define DEEPJOIN_JOIN_JOSIE_H_

#include <vector>

#include "join/joinability.h"
#include "util/top_k.h"

namespace deepjoin {
namespace join {

class JosieIndex {
 public:
  /// Builds the inverted index. The repository must outlive the index.
  explicit JosieIndex(const TokenizedRepository* repo);

  /// Exact top-k columns by equi-joinability jn(Q, X) = |Q ∩ X| / |Q|.
  std::vector<Scored> SearchTopK(const TokenSet& query, size_t k) const;

  size_t num_postings() const { return num_postings_; }

 private:
  struct Posting {
    u32 column;
    u32 column_size;  // |X|, for admission bounds
  };

  const TokenizedRepository* repo_;
  /// token id -> postings (columns containing the token).
  std::vector<std::vector<Posting>> postings_;
  size_t num_postings_ = 0;
};

}  // namespace join
}  // namespace deepjoin

#endif  // DEEPJOIN_JOIN_JOSIE_H_
