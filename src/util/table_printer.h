// Aligned plain-text table printer. The bench binaries use it to emit rows
// shaped like the paper's Tables 3-15.
#ifndef DEEPJOIN_UTIL_TABLE_PRINTER_H_
#define DEEPJOIN_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace deepjoin {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders the table to stdout with a title and column alignment.
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_TABLE_PRINTER_H_
