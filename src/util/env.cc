#include "util/env.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/metrics.h"

namespace deepjoin {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::IoError(op + " " + path + ": " + std::strerror(errno));
}

// I/O volume counters, taken at the POSIX layer so every Env wrapper
// (fault injection included) is measured by what actually hits the OS.
metrics::Counter* BytesWrittenCounter() {
  static metrics::Counter* const c =
      metrics::MetricsRegistry::Global().GetCounter("dj_env_bytes_written");
  return c;
}
metrics::Counter* BytesReadCounter() {
  static metrics::Counter* const c =
      metrics::MetricsRegistry::Global().GetCounter("dj_env_bytes_read");
  return c;
}
metrics::Counter* FsyncsCounter() {
  static metrics::Counter* const c =
      metrics::MetricsRegistry::Global().GetCounter("dj_env_fsyncs_total");
  return c;
}
metrics::Counter* MmapsCounter() {
  static metrics::Counter* const c =
      metrics::MetricsRegistry::Global().GetCounter("dj_env_mmaps_total");
  return c;
}

/// Fallback region for Envs without real mapping support: the range is
/// pread into an owned buffer (correct semantics, owned-memory cost).
class OwnedRegion : public MappedRegion {
 public:
  explicit OwnedRegion(std::string bytes) : bytes_(std::move(bytes)) {}
  const void* data() const override { return bytes_.data(); }
  u64 length() const override { return bytes_.size(); }

 private:
  std::string bytes_;
};

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t n) override {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      const ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Errno("write", path_);
      }
      p += w;
      n -= static_cast<size_t>(w);
      BytesWrittenCounter()->Add(static_cast<u64>(w));
    }
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }  // unbuffered

  Status Sync() override {
    if (::fsync(fd_) != 0) return Errno("fsync", path_);
    FsyncsCounter()->Increment();
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Errno("close", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(u64 offset, size_t n, void* scratch,
              size_t* bytes_read) const override {
    char* p = static_cast<char*>(scratch);
    size_t done = 0;
    while (done < n) {
      const ssize_t r = ::pread(fd_, p + done, n - done,
                                static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        *bytes_read = done;
        return Errno("pread", path_);
      }
      if (r == 0) break;  // EOF
      done += static_cast<size_t>(r);
    }
    *bytes_read = done;
    BytesReadCounter()->Add(done);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

/// A real read-only mmap. The map base is rounded down to a page boundary
/// (mmap requires page-aligned file offsets); data() re-applies the delta.
/// The fd is closed right after mapping — the mapping keeps the file
/// contents reachable on its own.
class PosixMappedRegion : public MappedRegion {
 public:
  PosixMappedRegion(void* base, size_t map_len, u64 delta, u64 length)
      : base_(base), map_len_(map_len), delta_(delta), length_(length) {}
  ~PosixMappedRegion() override {
    if (base_ != nullptr) ::munmap(base_, map_len_);
  }
  PosixMappedRegion(const PosixMappedRegion&) = delete;
  PosixMappedRegion& operator=(const PosixMappedRegion&) = delete;

  const void* data() const override {
    return static_cast<const char*>(base_) + delta_;
  }
  u64 length() const override { return length_; }

 private:
  void* base_;
  size_t map_len_;
  u64 delta_;
  u64 length_;
};

class PosixEnv : public Env {
 public:
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return Errno("open", path);
    *out = std::make_unique<PosixWritableFile>(fd, path);
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& path,
      std::unique_ptr<RandomAccessFile>* out) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Errno("open", path);
    *out = std::make_unique<PosixRandomAccessFile>(fd, path);
    return Status::OK();
  }

  Status GetFileSize(const std::string& path, u64* size) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
    *size = static_cast<u64>(st.st_size);
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) return Errno("rename", from);
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", path);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status NewMappedRegion(const std::string& path, u64 offset, u64 length,
                         std::shared_ptr<MappedRegion>* out) override {
    u64 file_size = 0;
    DJ_RETURN_IF_ERROR(GetFileSize(path, &file_size));
    if (offset > file_size || length > file_size - offset) {
      return Status::InvalidArgument(
          "mmap range [" + std::to_string(offset) + ", +" +
          std::to_string(length) + ") exceeds " + path + " size " +
          std::to_string(file_size));
    }
    if (length == 0) {
      *out = std::make_shared<PosixMappedRegion>(nullptr, 0, 0, 0);
      MmapsCounter()->Increment();
      return Status::OK();
    }
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Errno("open", path);
    const u64 page = static_cast<u64>(::sysconf(_SC_PAGESIZE));
    const u64 map_off = offset & ~(page - 1);
    const u64 delta = offset - map_off;
    const size_t map_len = static_cast<size_t>(length + delta);
    void* base = ::mmap(nullptr, map_len, PROT_READ, MAP_PRIVATE, fd,
                        static_cast<off_t>(map_off));
    const int saved_errno = errno;
    ::close(fd);
    if (base == MAP_FAILED) {
      errno = saved_errno;
      return Errno("mmap", path);
    }
    *out = std::make_shared<PosixMappedRegion>(base, map_len, delta, length);
    MmapsCounter()->Increment();
    return Status::OK();
  }
};

}  // namespace

Status Env::NewMappedRegion(const std::string& path, u64 offset, u64 length,
                            std::shared_ptr<MappedRegion>* out) {
  u64 file_size = 0;
  DJ_RETURN_IF_ERROR(GetFileSize(path, &file_size));
  if (offset > file_size || length > file_size - offset) {
    return Status::InvalidArgument(
        "map range [" + std::to_string(offset) + ", +" +
        std::to_string(length) + ") exceeds " + path + " size " +
        std::to_string(file_size));
  }
  std::unique_ptr<RandomAccessFile> file;
  DJ_RETURN_IF_ERROR(NewRandomAccessFile(path, &file));
  std::string bytes;
  bytes.resize(length);
  size_t read = 0;
  DJ_RETURN_IF_ERROR(file->Read(offset, length, bytes.data(), &read));
  if (read != length) {
    return Status::DataLoss(path + ": short read mapping fallback");
  }
  *out = std::make_shared<OwnedRegion>(std::move(bytes));
  return Status::OK();
}

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

Status ReadFileToString(Env* env, const std::string& path, std::string* out) {
  if (env == nullptr) env = Env::Default();
  u64 size = 0;
  DJ_RETURN_IF_ERROR(env->GetFileSize(path, &size));
  std::unique_ptr<RandomAccessFile> file;
  DJ_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &file));
  out->resize(size);
  size_t read = 0;
  DJ_RETURN_IF_ERROR(file->Read(0, size, out->data(), &read));
  out->resize(read);
  return Status::OK();
}

// ---- FaultInjectionEnv ----

namespace {

/// Forwards to the wrapped file, injecting Append/Sync failures per the
/// owning env's plan. A torn (short) write appends half the buffer before
/// reporting failure, modelling a crash mid-write. The injection decision
/// runs inside the env (under its "env.fault_state" lock); the delegated
/// I/O below runs with no lock held.
class FaultWritableFileImpl : public WritableFile {
 public:
  FaultWritableFileImpl(std::unique_ptr<WritableFile> base,
                        FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(const void* data, size_t n) override {
    bool torn = false;
    if (env_->InjectAppend(&torn)) {
      if (torn && n > 1) {
        base_->Append(data, n / 2).IgnoreError();
      }
      return Status::IoError("injected write failure");
    }
    return base_->Append(data, n);
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    if (env_->InjectSync()) {
      return Status::IoError("injected fsync failure");
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
};

}  // namespace

FaultCounters FaultInjectionEnv::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

void FaultInjectionEnv::ResetCounters() {
  MutexLock lock(mu_);
  counters_ = FaultCounters();
}

bool FaultInjectionEnv::InjectAppend(bool* torn) {
  MutexLock lock(mu_);
  const i64 idx = counters_.writes++;
  *torn = plan_.short_write;
  return idx == plan_.fail_write_index;
}

bool FaultInjectionEnv::InjectSync() {
  MutexLock lock(mu_);
  const i64 idx = counters_.syncs++;
  return idx == plan_.fail_sync_index;
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& path, std::unique_ptr<WritableFile>* out) {
  bool fail = false;
  {
    MutexLock lock(mu_);
    const i64 idx = counters_.opens++;
    fail = idx == plan_.fail_open_index;
  }
  if (fail) return Status::IoError("injected open failure");
  std::unique_ptr<WritableFile> base_file;
  DJ_RETURN_IF_ERROR(base_->NewWritableFile(path, &base_file));
  *out = std::make_unique<FaultWritableFileImpl>(std::move(base_file), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& path, std::unique_ptr<RandomAccessFile>* out) {
  return base_->NewRandomAccessFile(path, out);
}

Status FaultInjectionEnv::GetFileSize(const std::string& path, u64* size) {
  return base_->GetFileSize(path, size);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  bool fail = false;
  {
    MutexLock lock(mu_);
    const i64 idx = counters_.renames++;
    fail = idx == plan_.fail_rename_index;
  }
  if (fail) return Status::IoError("injected rename failure");
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  return base_->RemoveFile(path);
}

Status FaultInjectionEnv::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectionEnv::NewMappedRegion(
    const std::string& path, u64 offset, u64 length,
    std::shared_ptr<MappedRegion>* out) {
  bool fail = false;
  {
    MutexLock lock(mu_);
    const i64 idx = counters_.maps++;
    fail = idx == plan_.fail_map_index;
  }
  if (fail) return Status::IoError("injected mmap failure");
  return base_->NewMappedRegion(path, offset, length, out);
}

}  // namespace deepjoin
