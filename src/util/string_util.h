// Small string helpers used by the tokenizer, CSV io and data generator.
#ifndef DEEPJOIN_UTIL_STRING_UTIL_H_
#define DEEPJOIN_UTIL_STRING_UTIL_H_

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

namespace deepjoin {

inline std::string ToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

inline std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

inline std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

inline std::string Join(const std::vector<std::string>& parts,
                        std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += delim;
    out += parts[i];
  }
  return out;
}

inline bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// Formats a double with fixed precision; benches use this for table rows.
std::string FormatDouble(double v, int precision);

/// Appends the decimal rendering of `v` to `*out` — identical bytes to
/// std::to_string(v), but into a caller-owned buffer whose capacity is
/// reused across calls (the encoding hot path builds transformed column
/// text this way; see core/transform.h).
void AppendU64(unsigned long long v, std::string* out);

/// Appends `v` with fixed `precision` to `*out` — identical bytes to
/// FormatDouble(v, precision), without the temporary std::string.
void AppendFixed(double v, int precision, std::string* out);

}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_STRING_UTIL_H_
