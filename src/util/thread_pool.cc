#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "util/metrics.h"

namespace deepjoin {

thread_local ThreadPool* ThreadPool::current_pool_ = nullptr;

namespace {

metrics::Gauge* QueueDepthGauge() {
  static metrics::Gauge* const g =
      metrics::MetricsRegistry::Global().GetGauge("dj_threadpool_queue_depth");
  return g;
}

metrics::Counter* TasksTotalCounter() {
  static metrics::Counter* const c =
      metrics::MetricsRegistry::Global().GetCounter(
          "dj_threadpool_tasks_total");
  return c;
}

metrics::Histogram* TaskLatencyHistogram() {
  static metrics::Histogram* const h =
      metrics::MetricsRegistry::Global().GetHistogram("dj_threadpool_task_ms");
  return h;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
    // Notify under the lock: a waiter between its predicate check and its
    // sleep cannot miss the wakeup, and the cv cannot be destroyed between
    // an unlocked notify and the waiters draining.
    task_cv_.NotifyAll();
  }
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (!stop_) {
      tasks_.push(std::move(task));
      ++in_flight_;
      TasksTotalCounter()->Increment();
      QueueDepthGauge()->Set(static_cast<double>(tasks_.size()));
      task_cv_.NotifyOne();
      return;
    }
  }
  // Shutdown has begun: the queue may never be drained again, so enqueuing
  // would lose the task or deadlock a later Wait(). Run it here instead.
  task();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) done_cv_.Wait(mu_);
}

std::function<void()> ThreadPool::TakeTaskLocked() {
  std::function<void()> task = std::move(tasks_.front());
  tasks_.pop();
  return task;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t threads = workers_.size();
  if (threads <= 1 || n < 2 || current_pool_ == this) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Per-call batch state: ParallelFor must not return early when an
  // unrelated Submit finishes, nor block on unrelated in-flight tasks.
  struct Batch {
    Mutex mu{"threadpool.batch", rank::kPoolBatch};
    CondVar cv;
    size_t pending DJ_GUARDED_BY(mu) = 0;
  };
  auto batch = std::make_shared<Batch>();

  const size_t chunks = std::min(threads * 4, n);
  const size_t per = (n + chunks - 1) / chunks;
  {
    MutexLock lk(batch->mu);
    for (size_t c = 0; c < chunks; ++c) {
      if (c * per >= n) break;
      ++batch->pending;
    }
  }
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = c * per;
    const size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    // `fn` is captured by reference: this call blocks on the batch below,
    // so the referent outlives every chunk.
    Submit([lo, hi, &fn, batch] {
      for (size_t i = lo; i < hi; ++i) fn(i);
      MutexLock lk(batch->mu);
      if (--batch->pending == 0) batch->cv.NotifyAll();
    });
  }
  MutexLock lk(batch->mu);
  while (batch->pending != 0) batch->cv.Wait(batch->mu);
}

void ThreadPool::WorkerLoop() {
  current_pool_ = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (IdleLocked()) task_cv_.Wait(mu_);
      if (DrainedLocked()) break;
      task = TakeTaskLocked();
      QueueDepthGauge()->Set(static_cast<double>(tasks_.size()));
    }
    if (metrics::Enabled()) {
      const auto start = std::chrono::steady_clock::now();
      task();
      TaskLatencyHistogram()->Record(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count());
    } else {
      task();
    }
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.NotifyAll();
    }
  }
  current_pool_ = nullptr;
}

}  // namespace deepjoin
