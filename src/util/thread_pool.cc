#include "util/thread_pool.h"

#include <algorithm>

namespace deepjoin {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t threads = workers_.size();
  if (threads <= 1 || n < 2) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t chunks = std::min(threads * 4, n);
  const size_t per = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = c * per;
    const size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    Submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace deepjoin
