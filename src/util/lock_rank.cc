#include "util/lock_rank.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

#include "util/metrics.h"
#include "util/mutex.h"

namespace deepjoin {
namespace lock_rank {

namespace {

/// One entry of a thread's held-locks stack, newest last.
struct HeldLock {
  const void* mu = nullptr;
  const char* name = nullptr;  // nullptr for unranked locks
  int rank = rank::kUnranked;
  const char* file = "";
  unsigned line = 0;
};

struct ThreadState {
  std::vector<HeldLock> held;
  // Set while a hook body runs: the graph's own internal locking (and any
  // metric the hooks might someday touch) must not re-enter the hooks —
  // re-entry would self-deadlock on the very mutex being instrumented.
  bool in_hook = false;
};

ThreadState& Tls() {
  thread_local ThreadState state;
  return state;
}

/// RAII for ThreadState::in_hook.
class HookScope {
 public:
  explicit HookScope(ThreadState& s) : s_(s) { s_.in_hook = true; }
  ~HookScope() { s_.in_hook = false; }

 private:
  ThreadState& s_;
};

const char* NameOrUnranked(const char* name) {
  return name != nullptr ? name : "(unranked)";
}

[[noreturn]] void Die(const std::string& report) {
  std::fprintf(stderr, "[dj_lock_rank] FATAL: %s\n", report.c_str());
  std::abort();
}

std::string Site(const char* file, unsigned line) {
  return std::string(file) + ":" + std::to_string(line);
}

std::string DescribeHeld(const std::vector<HeldLock>& held) {
  std::string out;
  for (const HeldLock& h : held) {
    out += "\n  held: " + std::string(NameOrUnranked(h.name)) +
           " (rank " + std::to_string(h.rank) + ") acquired at " +
           Site(h.file, h.line);
  }
  return out;
}

/// Total acquisitions observed (ranked + unranked), published on demand.
std::atomic<unsigned long long> g_acquires{0};

/// Core of OnAcquire/OnTryAcquire. `enforce_rank` is false for TryLock.
void AcquireImpl(const void* mu, const char* name, int rank, const char* file,
                 unsigned line, bool enforce_rank) {
  ThreadState& s = Tls();
  if (s.in_hook) return;
  HookScope in_hook(s);
  g_acquires.fetch_add(1, std::memory_order_relaxed);

  // Re-entry on the same instance deadlocks std::mutex outright; report it
  // regardless of rank (TryLock included — a same-thread try_lock of a
  // held std::mutex is undefined behaviour).
  for (const HeldLock& h : s.held) {
    if (h.mu == mu) {
      Die("re-entrant acquisition of lock '" +
          std::string(NameOrUnranked(name)) + "' at " + Site(file, line) +
          " (already held, acquired at " + Site(h.file, h.line) + ")" +
          DescribeHeld(s.held));
    }
  }

  if (enforce_rank && rank != rank::kUnranked) {
    const HeldLock* deepest = nullptr;
    for (const HeldLock& h : s.held) {
      if (h.rank == rank::kUnranked) continue;
      if (deepest == nullptr || h.rank > deepest->rank) deepest = &h;
    }
    if (deepest != nullptr && deepest->rank >= rank) {
      Die("lock-rank inversion: acquiring '" + std::string(name) +
          "' (rank " + std::to_string(rank) + ") at " + Site(file, line) +
          " while holding '" + std::string(NameOrUnranked(deepest->name)) +
          "' (rank " + std::to_string(deepest->rank) + ") acquired at " +
          Site(deepest->file, deepest->line) +
          "; locks must be acquired in strictly increasing rank order" +
          DescribeHeld(s.held));
    }
  }

  // Record acquired-while-holding edges between named locks. Rank
  // validation makes these edges run uphill, so a cycle here means either
  // a TryLock-only ordering or a bug in the validator itself — fail loudly
  // rather than let the graph silently contradict the discipline.
  if (name != nullptr) {
    for (const HeldLock& h : s.held) {
      if (h.name == nullptr) continue;
      std::string cycle;
      if (LockOrderGraph::Global().AddEdge(h.name, name, Site(h.file, h.line),
                                           Site(file, line), &cycle)) {
        Die("lock-order cycle closed by acquiring '" + std::string(name) +
            "' at " + Site(file, line) + " while holding '" +
            std::string(h.name) + "': " + cycle + DescribeHeld(s.held));
      }
    }
  }

  s.held.push_back({mu, name, rank, file, line});
}

}  // namespace

bool Enabled() {
#if defined(DJ_LOCK_RANK)
  return true;
#else
  return false;
#endif
}

void OnAcquire(const void* mu, const char* name, int rank, const char* file,
               unsigned line) {
  AcquireImpl(mu, name, rank, file, line, /*enforce_rank=*/true);
}

void OnTryAcquire(const void* mu, const char* name, int rank,
                  const char* file, unsigned line) {
  AcquireImpl(mu, name, rank, file, line, /*enforce_rank=*/false);
}

void OnRelease(const void* mu) {
  ThreadState& s = Tls();
  if (s.in_hook) return;
  // Search from the top: releases usually unwind in LIFO order, but manual
  // Lock/Unlock pairs may interleave, so any held position is legal.
  for (size_t i = s.held.size(); i-- > 0;) {
    if (s.held[i].mu == mu) {
      s.held.erase(s.held.begin() + static_cast<long>(i));
      return;
    }
  }
  // Unmatched release: tolerated rather than fatal — a Mutex handed
  // between threads mid-critical-section is already outside the std::mutex
  // contract, and aborting here would mask the real report.
}

void OnCondVarWait(const void* mu, const char* file, unsigned line) {
  ThreadState& s = Tls();
  if (s.in_hook) return;
  const HeldLock* waited = nullptr;
  for (const HeldLock& h : s.held) {
    if (h.mu == mu) waited = &h;
  }
  if (waited == nullptr) {
    Die("CondVar::Wait at " + Site(file, line) +
        " on a mutex this thread does not hold" + DescribeHeld(s.held));
  }
  if (s.held.size() > 1) {
    // See the CondVar contract in util/mutex.h: the wait releases only
    // `mu`, so every other held lock stays held across an unbounded sleep
    // — the canonical shape of a condvar deadlock.
    Die("CondVar::Wait at " + Site(file, line) + " on '" +
        std::string(NameOrUnranked(waited->name)) +
        "' while holding other locks; waiting may only be done with a "
        "single lock held" +
        DescribeHeld(s.held));
  }
  OnRelease(mu);
}

void RegisterLock(const char* name, int rank, const char* file,
                  unsigned line) {
  ThreadState& s = Tls();
  if (s.in_hook) return;
  HookScope in_hook(s);
  LockOrderGraph::Global().RegisterNode(name, rank, Site(file, line));
}

size_t HeldDepth() { return Tls().held.size(); }

// ---- LockOrderGraph ----

struct LockOrderGraph::Impl {
  // Unnamed on purpose: a named mutex would re-enter RegisterLock (and
  // Global()) from its own constructor while the graph is being built.
  mutable Mutex mu;  // dj_deadlock: allow(unranked-mutex)

  struct Node {
    int rank = rank::kUnranked;
    std::string site;
  };
  struct Edge {
    unsigned long long count = 0;
    std::string from_site;
    std::string to_site;
  };

  // std::map keeps dumps sorted and therefore byte-stable.
  std::map<std::string, Node> nodes DJ_GUARDED_BY(mu);
  std::map<std::pair<std::string, std::string>, Edge> edges
      DJ_GUARDED_BY(mu);

  /// DFS reachability over `edges`: true if `to` can already reach `from`
  /// (so adding from->to would close a cycle). Caller holds `mu`.
  bool Reaches(const std::string& src, const std::string& dst,
               std::vector<std::string>* path) const DJ_REQUIRES(mu) {
    path->push_back(src);
    if (src == dst) return true;
    for (const auto& [key, edge] : edges) {
      (void)edge;
      if (key.first != src) continue;
      bool seen = false;
      for (const std::string& p : *path) {
        if (p == key.second) {
          seen = true;
          break;
        }
      }
      if (seen) continue;
      if (Reaches(key.second, dst, path)) return true;
    }
    path->pop_back();
    return false;
  }
};

LockOrderGraph::LockOrderGraph() : impl_(std::make_unique<Impl>()) {}
LockOrderGraph::~LockOrderGraph() = default;

LockOrderGraph& LockOrderGraph::Global() {
  // Leaked on purpose: mutexes constructed during static destruction (e.g.
  // in other translation units' teardown) still reach a live graph.
  static LockOrderGraph* const graph =
      new LockOrderGraph();  // dj_lint: allow(naked-new)
  return *graph;
}

void LockOrderGraph::RegisterNode(const std::string& name, int rank,
                                  const std::string& site) {
  MutexLock lock(impl_->mu);
  auto it = impl_->nodes.find(name);
  if (it == impl_->nodes.end()) {
    impl_->nodes[name] = {rank, site};
    return;
  }
  if (it->second.rank != rank) {
    Die("lock '" + name + "' registered with rank " +
        std::to_string(it->second.rank) + " at " + it->second.site +
        " and again with rank " + std::to_string(rank) + " at " + site +
        "; a lock name maps to exactly one rank");
  }
}

bool LockOrderGraph::AddEdge(const std::string& from, const std::string& to,
                             const std::string& from_site,
                             const std::string& to_site, std::string* cycle) {
  MutexLock lock(impl_->mu);
  auto [it, inserted] =
      impl_->edges.try_emplace({from, to}, Impl::Edge{0, from_site, to_site});
  ++it->second.count;
  if (!inserted) return false;  // existing edge cannot create a new cycle
  std::vector<std::string> path;
  if (impl_->Reaches(to, from, &path)) {
    if (cycle != nullptr) {
      *cycle = from;
      for (const std::string& n : path) *cycle += " -> " + n;
    }
    return true;
  }
  return false;
}

size_t LockOrderGraph::node_count() const {
  MutexLock lock(impl_->mu);
  return impl_->nodes.size();
}

size_t LockOrderGraph::edge_count() const {
  MutexLock lock(impl_->mu);
  return impl_->edges.size();
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// lock names and file paths are ASCII in practice.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string LockOrderGraph::ToJson() const {
  MutexLock lock(impl_->mu);
  std::string out = "{\"nodes\":[";
  bool first = true;
  for (const auto& [name, node] : impl_->nodes) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(name) +
           "\",\"rank\":" + std::to_string(node.rank) +
           ",\"declared_at\":\"" + JsonEscape(node.site) + "\"}";
  }
  out += "],\"edges\":[";
  first = true;
  for (const auto& [key, edge] : impl_->edges) {
    if (!first) out += ",";
    first = false;
    out += "{\"from\":\"" + JsonEscape(key.first) + "\",\"to\":\"" +
           JsonEscape(key.second) +
           "\",\"count\":" + std::to_string(edge.count) +
           ",\"from_site\":\"" + JsonEscape(edge.from_site) +
           "\",\"to_site\":\"" + JsonEscape(edge.to_site) + "\"}";
  }
  out += "]}";
  return out;
}

std::string LockOrderGraph::ToDot() const {
  MutexLock lock(impl_->mu);
  std::string out = "digraph lock_order {\n";
  for (const auto& [name, node] : impl_->nodes) {
    out += "  \"" + name + "\" [label=\"" + name +
           "\\nrank=" + std::to_string(node.rank) + "\"];\n";
  }
  for (const auto& [key, edge] : impl_->edges) {
    out += "  \"" + key.first + "\" -> \"" + key.second + "\" [label=\"" +
           std::to_string(edge.count) + "\"];\n";
  }
  out += "}\n";
  return out;
}

void LockOrderGraph::Clear() {
  MutexLock lock(impl_->mu);
  impl_->nodes.clear();
  impl_->edges.clear();
}

void PublishMetrics() {
  metrics::MetricsRegistry& reg = metrics::MetricsRegistry::Global();
  LockOrderGraph& graph = LockOrderGraph::Global();
  reg.GetGauge("dj_lockrank_nodes")
      ->Set(static_cast<double>(graph.node_count()));
  reg.GetGauge("dj_lockrank_edges")
      ->Set(static_cast<double>(graph.edge_count()));
  reg.GetGauge("dj_lockrank_acquires")
      ->Set(static_cast<double>(g_acquires.load(std::memory_order_relaxed)));
}

}  // namespace lock_rank
}  // namespace deepjoin
