// Injectable filesystem abstraction (LevelDB-style): all persistence in the
// library flows through an Env so tests can substitute a FaultInjectionEnv
// and prove crash-safety — fail the Nth write, tear a write short, fail
// fsync/rename/open — without touching a real disk failure. The default
// implementation is POSIX (fd-level write/fsync/rename) so BinaryWriter's
// atomic-save protocol (tmp + flush + fsync + rename, see DESIGN.md §7)
// has real durability semantics, not stdio buffering.
#ifndef DEEPJOIN_UTIL_ENV_H_
#define DEEPJOIN_UTIL_ENV_H_

#include <memory>
#include <string>

#include "util/common.h"
#include "util/mutex.h"
#include "util/status.h"

namespace deepjoin {

/// A file opened for appending. Append order is write order; nothing is
/// durable until Sync() returns OK.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const void* data, size_t n) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// A file opened for positional reads (pread-style; no shared cursor).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  /// Reads up to `n` bytes at `offset` into `scratch`. Short reads at EOF
  /// are not an error: `*bytes_read` reports what was read.
  virtual Status Read(u64 offset, size_t n, void* scratch,
                      size_t* bytes_read) const = 0;
};

/// An immutable view of a byte range of a file. The POSIX implementation
/// is a real read-only mmap (demand-paged, O(1) to establish); destroying
/// the region unmaps it. Holders share it via shared_ptr: an index
/// snapshot keeps its store's region alive, the store keeps the index's,
/// so RCU-pinned readers can never observe an unmapped page (DESIGN.md
/// §14).
class MappedRegion {
 public:
  virtual ~MappedRegion() = default;
  virtual const void* data() const = 0;
  virtual u64 length() const = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment.
  static Env* Default();

  /// Creates (truncating) `path` for writing.
  virtual Status NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* out) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& path, std::unique_ptr<RandomAccessFile>* out) = 0;
  virtual Status GetFileSize(const std::string& path, u64* size) = 0;
  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  /// Creates `path` as a directory; an existing directory is OK.
  virtual Status CreateDir(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;

  /// Maps [offset, offset+length) of `path` read-only. PosixEnv overrides
  /// this with real mmap (the only TU allowed to call mmap — dj_lint rule
  /// `raw-mmap`); the base implementation preads the range into an owned
  /// buffer so custom test Envs keep working, at owned-memory cost. The
  /// range must lie within the file.
  virtual Status NewMappedRegion(const std::string& path, u64 offset,
                                 u64 length,
                                 std::shared_ptr<MappedRegion>* out);
};

/// Reads the whole of `path` into `*out` through `env` (nullptr → Default).
Status ReadFileToString(Env* env, const std::string& path, std::string* out);

/// Which failure a FaultInjectionEnv injects. Indices are 0-based counts of
/// the corresponding operation across every file the env opens; -1 disables
/// that injection. Counters keep advancing after an injection, so a single
/// plan fires each fault exactly once.
struct FaultPlan {
  i64 fail_write_index = -1;   ///< fail the k-th Append
  bool short_write = false;    ///< on injected Append failure, first write
                               ///< half the buffer (a torn write)
  i64 fail_sync_index = -1;    ///< fail the k-th Sync
  i64 fail_rename_index = -1;  ///< fail the k-th RenameFile
  i64 fail_open_index = -1;    ///< fail the k-th NewWritableFile
  i64 fail_map_index = -1;     ///< fail the k-th NewMappedRegion
};

/// Operation counts observed by a FaultInjectionEnv. Run once with an
/// all-disabled plan to learn how many injection points an operation has,
/// then enumerate them.
struct FaultCounters {
  i64 writes = 0;
  i64 syncs = 0;
  i64 renames = 0;
  i64 opens = 0;
  i64 maps = 0;
};

/// Wraps a base Env and injects failures per a FaultPlan. Injected errors
/// surface as Status::IoError with an "injected" message.
///
/// Thread-safe for concurrent operations: the injection decision (counter
/// advance + plan comparison) runs under the named "env.fault_state" lock,
/// and the delegated base-Env I/O runs after the lock is released — real
/// I/O never happens while a mutex is held (tools/dj_deadlock enforces the
/// same rule statically across src/). Configure the plan before handing
/// the env to concurrent users: plan() mutation does not synchronise with
/// in-flight operations.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  FaultPlan& plan() { return plan_; }
  FaultCounters counters() const DJ_EXCLUDES(mu_);
  void ResetCounters() DJ_EXCLUDES(mu_);

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override;
  Status NewRandomAccessFile(
      const std::string& path,
      std::unique_ptr<RandomAccessFile>* out) override;
  Status GetFileSize(const std::string& path, u64* size) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status NewMappedRegion(const std::string& path, u64 offset, u64 length,
                         std::shared_ptr<MappedRegion>* out) override;

  /// Injection points for the wrapped WritableFile (env.cc): each advances
  /// the matching operation counter and reports whether this operation
  /// must fail. `*torn` is set when the failing Append should first write
  /// half the buffer. Public only for the file wrapper.
  bool InjectAppend(bool* torn) DJ_EXCLUDES(mu_);
  bool InjectSync() DJ_EXCLUDES(mu_);

 private:
  Env* base_;
  FaultPlan plan_;  // written at configure time, read-only during ops
  mutable Mutex mu_{"env.fault_state", rank::kEnvFault};
  FaultCounters counters_ DJ_GUARDED_BY(mu_);
};

}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_ENV_H_
