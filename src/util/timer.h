// Wall-clock timing for the latency benchmarks.
#ifndef DEEPJOIN_UTIL_TIMER_H_
#define DEEPJOIN_UTIL_TIMER_H_

#include <chrono>

namespace deepjoin {

/// Monotonic stopwatch. Construct (or Reset) to start.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time over repeated scoped sections; used to split query
/// encoding time from total time as in Tables 13-15.
class TimeAccumulator {
 public:
  void Add(double seconds) {
    total_ += seconds;
    ++count_;
  }
  double TotalSeconds() const { return total_; }
  double MeanMillis() const { return count_ ? total_ * 1e3 / count_ : 0.0; }
  long Count() const { return count_; }
  void Reset() { total_ = 0.0; count_ = 0; }

 private:
  double total_ = 0.0;
  long count_ = 0;
};

}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_TIMER_H_
