#include "util/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <vector>

// The one translation unit allowed to touch SIMD intrinsics (dj_lint rule
// `simd-intrinsics`). The AVX2 paths are compiled with per-function target
// attributes so the file builds with the tree's baseline flags and the
// vector code is only ever *executed* after a cpuid check.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DJ_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace deepjoin {
namespace kern {

namespace {

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

// 0 = no override, else 1 + static_cast<int>(Tier).
std::atomic<int> g_forced_tier{0};

Tier DetectTierOnce() {
  const char* force = std::getenv("DJ_FORCE_SCALAR_KERNELS");
  if (force != nullptr && force[0] != '\0' && force[0] != '0') {
    return Tier::kScalar;
  }
#if DJ_KERNELS_X86
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Tier::kAvx2;
  }
#endif
  return Tier::kScalar;
}

// ---------------------------------------------------------------------------
// Scalar tier
// ---------------------------------------------------------------------------

float DotScalar(const float* a, const float* b, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float SquaredL2Scalar(const float* a, const float* b, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float SquaredL2Sq8Scalar(const float* q, const u8* codes, const float* lo,
                         const float* scale, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) {
    const float v = lo[i] + scale[i] * static_cast<float>(codes[i]);
    const float d = q[i] - v;
    acc += d * d;
  }
  return acc;
}

void AxpyScalar(int n, float alpha, const float* x, float* y) {
  for (int i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleAddScalar(int n, float alpha, const float* x, float beta,
                    float* y) {
  if (beta == 0.0f) {
    for (int i = 0; i < n; ++i) y[i] = alpha * x[i];
  } else {
    for (int i = 0; i < n; ++i) y[i] = alpha * x[i] + beta * y[i];
  }
}

// GEMM blocking constants, shared by both tiers so the per-element chain
// (seeded 0 per KC block of k, ascending within it) is tier-independent in
// SHAPE — only the fused-vs-unfused arithmetic differs.
constexpr int kKC = 256;  // k-block: one block covers every repo shape
constexpr int kMR = 4;    // microkernel rows
constexpr int kNR = 16;   // microkernel cols (two 8-float AVX2 lanes)

enum class Variant { kNN, kNT, kTN };

// Element access for op(A)/op(B) under each variant: a(i, p) is the (i,
// p) entry of op(A) [m,k]; b(p, j) the (p, j) entry of op(B) [k,n].
inline float AElem(Variant v, const float* a, int lda, int i, int p) {
  return v == Variant::kTN ? a[static_cast<size_t>(p) * lda + i]
                           : a[static_cast<size_t>(i) * lda + p];
}
inline float BElem(Variant v, const float* b, int ldb, int p, int j) {
  return v == Variant::kNT ? b[static_cast<size_t>(j) * ldb + p]
                           : b[static_cast<size_t>(p) * ldb + j];
}

/// Scalar GEMM. Per row, a temporary accumulator strip tmp[0..n) holds the
/// KC-block partial sums: tmp[j] is exactly the documented chain (seeded 0,
/// k ascending, unfused multiply-add), added to C per block. The strip
/// keeps the inner loop streaming over contiguous memory for NN/TN.
void SgemmScalar(Variant variant, int m, int n, int k, const float* a,
                 int lda, const float* b, int ldb, float* c, int ldc) {
  // Capacity-reusing per-thread strip: grows to the widest n, then warm.
  thread_local std::vector<float> tmp;           // dj_alloc: allow(alloc)
  if (static_cast<int>(tmp.size()) < n) tmp.resize(n);  // dj_alloc: allow(alloc)
  for (int i = 0; i < m; ++i) {
    float* crow = c + static_cast<size_t>(i) * ldc;
    for (int k0 = 0; k0 < k; k0 += kKC) {
      const int kc = std::min(kKC, k - k0);
      if (variant == Variant::kNT) {
        // Row-major B^T: a dot product per output, chain order identical
        // to the strip path (same seed, same ascending k).
        for (int j = 0; j < n; ++j) {
          const float* arow = a + static_cast<size_t>(i) * lda + k0;
          const float* brow = b + static_cast<size_t>(j) * ldb + k0;
          float partial = 0.0f;
          for (int p = 0; p < kc; ++p) partial += arow[p] * brow[p];
          crow[j] += partial;
        }
        continue;
      }
      for (int j = 0; j < n; ++j) tmp[j] = 0.0f;
      for (int p = 0; p < kc; ++p) {
        const float av = AElem(variant, a, lda, i, k0 + p);
        const float* brow = b + static_cast<size_t>(k0 + p) * ldb;
        for (int j = 0; j < n; ++j) tmp[j] += av * brow[j];
      }
      for (int j = 0; j < n; ++j) crow[j] += tmp[j];
    }
  }
}

// ---------------------------------------------------------------------------
// AVX2 tier
// ---------------------------------------------------------------------------

#if DJ_KERNELS_X86

__attribute__((target("avx2,fma")))
float DotAvx2(const float* a, const float* b, int n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  if (i + 8 <= n) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    i += 8;
  }
  // Fixed-order horizontal sum: ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)).
  const __m256 acc = _mm256_add_ps(acc0, acc1);
  const __m128 lo = _mm256_castps256_ps128(acc);
  const __m128 hi = _mm256_extractf128_ps(acc, 1);
  const __m128 s4 = _mm_add_ps(lo, hi);
  const __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
  const __m128 s1 = _mm_add_ss(s2, _mm_movehdup_ps(s2));
  float sum = _mm_cvtss_f32(s1);
  for (; i < n; ++i) sum = std::fma(a[i], b[i], sum);
  return sum;
}

__attribute__((target("avx2,fma")))
float SquaredL2Avx2(const float* a, const float* b, int n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8),
                                    _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  if (i + 8 <= n) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    i += 8;
  }
  const __m256 acc = _mm256_add_ps(acc0, acc1);
  const __m128 lo = _mm256_castps256_ps128(acc);
  const __m128 hi = _mm256_extractf128_ps(acc, 1);
  const __m128 s4 = _mm_add_ps(lo, hi);
  const __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
  const __m128 s1 = _mm_add_ss(s2, _mm_movehdup_ps(s2));
  float sum = _mm_cvtss_f32(s1);
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    sum = std::fma(d, d, sum);
  }
  return sum;
}

// Widens 8 SQ8 codes to floats (exact: u8 values fit a float) and decodes
// them with a single FMA per lane — the decode never leaves registers.
__attribute__((target("avx2,fma")))
inline __m256 DecodeSq8Block(const u8* codes, const float* lo,
                             const float* scale) {
  const __m256i wide = _mm256_cvtepu8_epi32(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes)));
  return _mm256_fmadd_ps(_mm256_loadu_ps(scale), _mm256_cvtepi32_ps(wide),
                         _mm256_loadu_ps(lo));
}

__attribute__((target("avx2,fma")))
float SquaredL2Sq8Avx2(const float* q, const u8* codes, const float* lo,
                       const float* scale, int n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(q + i),
                                    DecodeSq8Block(codes + i, lo + i,
                                                   scale + i));
    const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(q + i + 8),
                                    DecodeSq8Block(codes + i + 8, lo + i + 8,
                                                   scale + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  if (i + 8 <= n) {
    const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(q + i),
                                    DecodeSq8Block(codes + i, lo + i,
                                                   scale + i));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    i += 8;
  }
  const __m256 acc = _mm256_add_ps(acc0, acc1);
  const __m128 lo128 = _mm256_castps256_ps128(acc);
  const __m128 hi128 = _mm256_extractf128_ps(acc, 1);
  const __m128 s4 = _mm_add_ps(lo128, hi128);
  const __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
  const __m128 s1 = _mm_add_ss(s2, _mm_movehdup_ps(s2));
  float sum = _mm_cvtss_f32(s1);
  for (; i < n; ++i) {
    const float v = std::fma(scale[i], static_cast<float>(codes[i]), lo[i]);
    const float d = q[i] - v;
    sum = std::fma(d, d, sum);
  }
  return sum;
}

__attribute__((target("avx2,fma")))
void AxpyAvx2(int n, float alpha, const float* x, float* y) {
  const __m256 av = _mm256_set1_ps(alpha);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

__attribute__((target("avx2,fma")))
void ScaleAddAvx2(int n, float alpha, const float* x, float beta, float* y) {
  const __m256 av = _mm256_set1_ps(alpha);
  int i = 0;
  if (beta == 0.0f) {
    // Pure y = alpha*x: a plain multiply in both tiers, so this case stays
    // bit-identical across tiers and never reads (possibly garbage) y.
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(y + i, _mm256_mul_ps(av, _mm256_loadu_ps(x + i)));
    }
    for (; i < n; ++i) y[i] = alpha * x[i];
    return;
  }
  const __m256 bv = _mm256_set1_ps(beta);
  for (; i + 8 <= n; i += 8) {
    const __m256 t = _mm256_mul_ps(av, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(bv, _mm256_loadu_ps(y + i), t));
  }
  for (; i < n; ++i) y[i] = std::fma(beta, y[i], alpha * x[i]);
}

// Mask table for partial 8-lane column groups: Mask8(v) has the first v
// lanes enabled. (Entry layout: 8 ones then 8 zeros; slide the window.)
alignas(32) constexpr int kMaskTable[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                            0,  0,  0,  0,  0,  0,  0,  0};

__attribute__((target("avx2")))
inline __m256i Mask8(int valid) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + 8 - valid));
}

/// 4x16 FMA microkernel over one packed KC block. ap holds kc steps of 4
/// A values (k-major: ap[p*4 + r]); bp holds kc steps of 16 B values
/// (bp[p*16 + j]); both zero-padded, so every accumulator lane is the
/// documented single FMA chain. Adds the block sums into C, touching only
/// the `rows` x `cols` valid corner.
__attribute__((target("avx2,fma")))
void MicroKernel4x16(int kc, const float* ap, const float* bp, float* c,
                     int ldc, int rows, int cols) {
  __m256 acc[kMR][2];
  for (int r = 0; r < kMR; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (int p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * kNR);
    const __m256 b1 = _mm256_loadu_ps(bp + p * kNR + 8);
    for (int r = 0; r < kMR; ++r) {
      const __m256 av = _mm256_set1_ps(ap[p * kMR + r]);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < rows; ++r) {
    float* crow = c + static_cast<size_t>(r) * ldc;
    for (int half = 0; half < 2; ++half) {
      const int valid = std::min(8, cols - half * 8);
      if (valid <= 0) break;
      float* cp = crow + half * 8;
      if (valid == 8) {
        _mm256_storeu_ps(cp, _mm256_add_ps(_mm256_loadu_ps(cp), acc[r][half]));
      } else {
        const __m256i mask = Mask8(valid);
        const __m256 cv = _mm256_maskload_ps(cp, mask);
        _mm256_maskstore_ps(cp, mask, _mm256_add_ps(cv, acc[r][half]));
      }
    }
  }
}

/// Packs the kc x `cols` block of op(B) at (k0, j0) into a zero-padded
/// kc x kNR panel, k-major.
void PackBPanel(Variant variant, const float* b, int ldb, int k0, int kc,
                int j0, int cols, float* out) {
  for (int p = 0; p < kc; ++p) {
    float* dst = out + static_cast<size_t>(p) * kNR;
    if (variant == Variant::kNT) {
      for (int j = 0; j < cols; ++j) {
        dst[j] = b[static_cast<size_t>(j0 + j) * ldb + k0 + p];
      }
    } else {
      const float* src = b + static_cast<size_t>(k0 + p) * ldb + j0;
      for (int j = 0; j < cols; ++j) dst[j] = src[j];
    }
    for (int j = cols; j < kNR; ++j) dst[j] = 0.0f;
  }
}

/// Packs the `rows` x kc block of op(A) at (i0, k0) into a zero-padded
/// kc x kMR panel, k-major.
void PackAPanel(Variant variant, const float* a, int lda, int i0, int rows,
                int k0, int kc, float* out) {
  if (variant == Variant::kTN) {
    for (int p = 0; p < kc; ++p) {
      const float* src = a + static_cast<size_t>(k0 + p) * lda + i0;
      float* dst = out + static_cast<size_t>(p) * kMR;
      for (int r = 0; r < rows; ++r) dst[r] = src[r];
      for (int r = rows; r < kMR; ++r) dst[r] = 0.0f;
    }
    return;
  }
  for (int p = 0; p < kc; ++p) {
    float* dst = out + static_cast<size_t>(p) * kMR;
    for (int r = 0; r < rows; ++r) {
      dst[r] = a[static_cast<size_t>(i0 + r) * lda + k0 + p];
    }
    for (int r = rows; r < kMR; ++r) dst[r] = 0.0f;
  }
}

using PackVector = std::vector<float, AlignedAllocator<float, 64>>;

struct PackBuffers {
  PackVector a;
  PackVector b;
};

PackBuffers& TlsPackBuffers() {
  thread_local PackBuffers buffers;
  return buffers;
}

/// Blocked, packed GEMM driver (AVX2 tier). Per KC block: pack all of B
/// once, then stream kMR-row panels of A through the microkernel. The
/// zero padding in both panels means padded lanes/rows compute harmless
/// garbage that is never stored, and every stored element is the
/// documented chain.
void SgemmAvx2(Variant variant, int m, int n, int k, const float* a, int lda,
               const float* b, int ldb, float* c, int ldc) {
  PackBuffers& bufs = TlsPackBuffers();
  const int n_panels = (n + kNR - 1) / kNR;
  const size_t bneed = static_cast<size_t>(n_panels) *
                       static_cast<size_t>(std::min(k, kKC)) * kNR;
  // Pack buffers reuse thread-local capacity; growth is warmup-only.
  if (bufs.b.size() < bneed) bufs.b.resize(bneed);  // dj_alloc: allow(alloc)
  const size_t aneed = static_cast<size_t>(std::min(k, kKC)) * kMR;
  if (bufs.a.size() < aneed) bufs.a.resize(aneed);  // dj_alloc: allow(alloc)

  for (int k0 = 0; k0 < k; k0 += kKC) {
    const int kc = std::min(kKC, k - k0);
    for (int jp = 0; jp < n_panels; ++jp) {
      const int j0 = jp * kNR;
      PackBPanel(variant, b, ldb, k0, kc, j0, std::min(kNR, n - j0),
                 bufs.b.data() + static_cast<size_t>(jp) * kc * kNR);
    }
    for (int i0 = 0; i0 < m; i0 += kMR) {
      const int rows = std::min(kMR, m - i0);
      PackAPanel(variant, a, lda, i0, rows, k0, kc, bufs.a.data());
      for (int jp = 0; jp < n_panels; ++jp) {
        const int j0 = jp * kNR;
        MicroKernel4x16(kc, bufs.a.data(),
                        bufs.b.data() + static_cast<size_t>(jp) * kc * kNR,
                        c + static_cast<size_t>(i0) * ldc + j0, ldc, rows,
                        std::min(kNR, n - j0));
      }
    }
  }
}

#endif  // DJ_KERNELS_X86

void SgemmDispatch(Variant variant, int m, int n, int k, const float* a,
                   int lda, const float* b, int ldb, float* c, int ldc) {
  if (m <= 0 || n <= 0 || k <= 0) return;
#if DJ_KERNELS_X86
  if (ActiveTier() == Tier::kAvx2) {
    SgemmAvx2(variant, m, n, k, a, lda, b, ldb, c, ldc);
    return;
  }
#endif
  SgemmScalar(variant, m, n, k, a, lda, b, ldb, c, ldc);
}

}  // namespace

Tier DetectedTier() {
  static const Tier tier = DetectTierOnce();
  return tier;
}

Tier ActiveTier() {
  const int forced = g_forced_tier.load(std::memory_order_relaxed);
  if (forced != 0) return static_cast<Tier>(forced - 1);
  return DetectedTier();
}

const char* TierName(Tier tier) {
  return tier == Tier::kAvx2 ? "avx2+fma" : "scalar";
}

void ForceTierForTest(Tier tier) {
  if (tier == Tier::kAvx2) {
#if DJ_KERNELS_X86
    DJ_CHECK_MSG(__builtin_cpu_supports("avx2") &&
                     __builtin_cpu_supports("fma"),
                 "cannot force the AVX2 tier: hardware lacks avx2+fma");
#else
    DJ_CHECK_MSG(false, "cannot force the AVX2 tier: not an x86-64 build");
#endif
  }
  g_forced_tier.store(1 + static_cast<int>(tier), std::memory_order_relaxed);
}

void ClearForcedTierForTest() {
  g_forced_tier.store(0, std::memory_order_relaxed);
}

float Dot(const float* a, const float* b, int n) {
#if DJ_KERNELS_X86
  if (ActiveTier() == Tier::kAvx2) return DotAvx2(a, b, n);
#endif
  return DotScalar(a, b, n);
}

float SquaredL2(const float* a, const float* b, int n) {
#if DJ_KERNELS_X86
  if (ActiveTier() == Tier::kAvx2) return SquaredL2Avx2(a, b, n);
#endif
  return SquaredL2Scalar(a, b, n);
}

float SquaredL2Sq8(const float* q, const u8* codes, const float* lo,
                   const float* scale, int n) {
#if DJ_KERNELS_X86
  if (ActiveTier() == Tier::kAvx2) {
    return SquaredL2Sq8Avx2(q, codes, lo, scale, n);
  }
#endif
  return SquaredL2Sq8Scalar(q, codes, lo, scale, n);
}

void Axpy(int n, float alpha, const float* x, float* y) {
#if DJ_KERNELS_X86
  if (ActiveTier() == Tier::kAvx2) {
    AxpyAvx2(n, alpha, x, y);
    return;
  }
#endif
  AxpyScalar(n, alpha, x, y);
}

void ScaleAdd(int n, float alpha, const float* x, float beta, float* y) {
#if DJ_KERNELS_X86
  if (ActiveTier() == Tier::kAvx2) {
    ScaleAddAvx2(n, alpha, x, beta, y);
    return;
  }
#endif
  ScaleAddScalar(n, alpha, x, beta, y);
}

void SgemmNN(int m, int n, int k, const float* a, int lda, const float* b,
             int ldb, float* c, int ldc) {
  SgemmDispatch(Variant::kNN, m, n, k, a, lda, b, ldb, c, ldc);
}

void SgemmNT(int m, int n, int k, const float* a, int lda, const float* b,
             int ldb, float* c, int ldc) {
  SgemmDispatch(Variant::kNT, m, n, k, a, lda, b, ldb, c, ldc);
}

void SgemmTN(int m, int n, int k, const float* a, int lda, const float* b,
             int ldb, float* c, int ldc) {
  SgemmDispatch(Variant::kTN, m, n, k, a, lda, b, ldb, c, ldc);
}

}  // namespace kern
}  // namespace deepjoin
