#include "util/trace.h"

#include <algorithm>
#include <cstdio>

namespace deepjoin {
namespace trace {

namespace {
thread_local TraceCollector* tls_collector = nullptr;
}  // namespace

// ---- SpanNode / QueryStats -------------------------------------------------

const SpanNode* SpanNode::Find(const std::string& span_name) const {
  if (name == span_name) return this;
  for (const SpanNode& child : children) {
    if (const SpanNode* hit = child.Find(span_name)) return hit;
  }
  return nullptr;
}

double QueryStats::SpanMs(const std::string& span_name) const {
  const SpanNode* hit = root.Find(span_name);
  return hit != nullptr ? hit->elapsed_ms : 0.0;
}

u64 QueryStats::CounterValue(const std::string& counter_name) const {
  for (const CounterDelta& c : counters) {
    if (c.name == counter_name) return c.value;
  }
  return 0;
}

namespace {
void AppendTree(const SpanNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", node.elapsed_ms);
  *out += node.name + ": " + buf + " ms\n";
  for (const SpanNode& child : node.children) {
    AppendTree(child, depth + 1, out);
  }
}
}  // namespace

std::string QueryStats::ToString() const {
  std::string out;
  AppendTree(root, 0, &out);
  for (const CounterDelta& c : counters) {
    out += c.name + " = " + std::to_string(c.value) + "\n";
  }
  return out;
}

// ---- TraceCollector --------------------------------------------------------

TraceCollector::TraceCollector(bool enabled) : enabled_(enabled) {
  if (!enabled_) return;
  prev_ = tls_collector;
  tls_collector = this;
}

TraceCollector::~TraceCollector() {
  if (!enabled_) return;
  DJ_CHECK_MSG(tls_collector == this,
               "TraceCollector destroyed out of install order");
  tls_collector = prev_;
}

TraceCollector* TraceCollector::Current() { return tls_collector; }

void TraceCollector::OpenSpan(const char* name) {
  SpanNode node;
  node.name = name;
  stack_.push_back(std::move(node));
}

void TraceCollector::CloseSpan(double elapsed_ms) {
  DJ_CHECK_MSG(!stack_.empty(), "CloseSpan with no open span");
  SpanNode done = std::move(stack_.back());
  stack_.pop_back();
  done.elapsed_ms = elapsed_ms;
  if (stack_.empty()) {
    roots_.push_back(std::move(done));
  } else {
    stack_.back().children.push_back(std::move(done));
  }
}

void TraceCollector::AddCount(const char* name, u64 delta) {
  for (CounterDelta& c : counts_) {
    if (c.name == name) {
      c.value += delta;
      return;
    }
  }
  counts_.push_back({name, delta});
}

QueryStats TraceCollector::Finish() {
  DJ_CHECK_MSG(stack_.empty(), "Finish() with a span still open");
  QueryStats stats;
  if (roots_.size() == 1) {
    stats.root = std::move(roots_.front());
  } else {
    stats.root.name = "query";
    for (SpanNode& r : roots_) {
      stats.root.elapsed_ms += r.elapsed_ms;
      stats.root.children.push_back(std::move(r));
    }
  }
  roots_.clear();
  stats.counters = std::move(counts_);
  counts_.clear();
  std::sort(stats.counters.begin(), stats.counters.end(),
            [](const CounterDelta& a, const CounterDelta& b) {
              return a.name < b.name;
            });
  return stats;
}

// ---- Span -> histogram name ------------------------------------------------

std::string SpanHistogramName(const char* span_name) {
  std::string out = "dj_";
  for (const char* p = span_name; *p != '\0'; ++p) {
    out += (*p == '.' || *p == '-') ? '_' : *p;
  }
  out += "_ms";
  return out;
}

}  // namespace trace
}  // namespace deepjoin
