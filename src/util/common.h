// Common primitive aliases and check macros shared across the library.
#ifndef DEEPJOIN_UTIL_COMMON_H_
#define DEEPJOIN_UTIL_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace deepjoin {

using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

/// Aborts the process with a message when `cond` is false. Used for
/// programming-error invariants (never for recoverable conditions; those
/// return Status).
#define DJ_CHECK(cond)                                                       \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "DJ_CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define DJ_CHECK_MSG(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "DJ_CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, #cond, (msg));                                  \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_COMMON_H_
