// Fixed-size thread pool with a ParallelFor helper. Stands in for the GPU in
// the paper's "DeepJoin (GPU)" rows: query encoding is embarrassingly
// parallel across queries, so batching over a pool reproduces the shape of
// the accelerated path (see DESIGN.md, substitution table).
//
// Concurrency contract (exercised by thread_pool_stress_test under TSan):
//  - Submit/Wait/ParallelFor may be called from any thread, including from
//    inside tasks running on this pool.
//  - Submit racing pool destruction never touches a dead queue: once
//    shutdown has begun, Submit runs the task inline on the calling thread.
//  - ParallelFor called from inside one of this pool's own tasks runs
//    inline (queuing chunks and blocking would deadlock once every worker
//    did the same).
#ifndef DEEPJOIN_UTIL_THREAD_POOL_H_
#define DEEPJOIN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/common.h"

namespace deepjoin {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw. If the pool is shutting down,
  /// the task runs inline on the calling thread instead of being enqueued.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished, including tasks
  /// submitted by other threads while this call is waiting.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n), partitioned into contiguous chunks across
  /// the pool, and blocks until done — without waiting on unrelated tasks
  /// (each call tracks its own batch). Falls back to inline execution for a
  /// single-thread pool, tiny n, or when called from a worker of this pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  /// The pool whose worker thread we are currently on, or nullptr.
  static thread_local ThreadPool* current_pool_;

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_THREAD_POOL_H_
