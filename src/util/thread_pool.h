// Fixed-size thread pool with a ParallelFor helper. Stands in for the GPU in
// the paper's "DeepJoin (GPU)" rows: query encoding is embarrassingly
// parallel across queries, so batching over a pool reproduces the shape of
// the accelerated path (see DESIGN.md, substitution table).
#ifndef DEEPJOIN_UTIL_THREAD_POOL_H_
#define DEEPJOIN_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/common.h"

namespace deepjoin {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n), partitioned into contiguous chunks across
  /// the pool, and blocks until done. Falls back to inline execution for a
  /// single-thread pool or tiny n.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_THREAD_POOL_H_
