// Fixed-size thread pool with a ParallelFor helper. Stands in for the GPU in
// the paper's "DeepJoin (GPU)" rows: query encoding is embarrassingly
// parallel across queries, so batching over a pool reproduces the shape of
// the accelerated path (see DESIGN.md, substitution table).
//
// Concurrency contract (annotated via util/mutex.h and checked at compile
// time under -Wthread-safety; exercised by thread_pool_stress_test under
// TSan):
//  - Submit/Wait/ParallelFor may be called from any thread, including from
//    inside tasks running on this pool.
//  - Submit racing pool destruction never touches a dead queue: once
//    shutdown has begun, Submit runs the task inline on the calling thread.
//  - ParallelFor called from inside one of this pool's own tasks runs
//    inline (queuing chunks and blocking would deadlock once every worker
//    did the same).
#ifndef DEEPJOIN_UTIL_THREAD_POOL_H_
#define DEEPJOIN_UTIL_THREAD_POOL_H_

#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/common.h"
#include "util/mutex.h"

namespace deepjoin {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw. If the pool is shutting down,
  /// the task runs inline on the calling thread instead of being enqueued.
  void Submit(std::function<void()> task) DJ_EXCLUDES(mu_);

  /// Blocks until all submitted tasks have finished, including tasks
  /// submitted by other threads while this call is waiting.
  void Wait() DJ_EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n), partitioned into contiguous chunks across
  /// the pool, and blocks until done — without waiting on unrelated tasks
  /// (each call tracks its own batch). Falls back to inline execution for a
  /// single-thread pool, tiny n, or when called from a worker of this pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn)
      DJ_EXCLUDES(mu_);

 private:
  void WorkerLoop() DJ_EXCLUDES(mu_);

  /// True once shutdown has begun and the queue has drained — the worker's
  /// exit condition.
  bool DrainedLocked() const DJ_REQUIRES(mu_) {
    return stop_ && tasks_.empty();
  }

  /// True while a worker should keep sleeping on task_cv_.
  bool IdleLocked() const DJ_REQUIRES(mu_) {
    return !stop_ && tasks_.empty();
  }

  /// Pops the next task; the queue must be non-empty.
  std::function<void()> TakeTaskLocked() DJ_REQUIRES(mu_);

  /// The pool whose worker thread we are currently on, or nullptr.
  static thread_local ThreadPool* current_pool_;

  std::vector<std::thread> workers_;
  // Rank: workers touch the metrics registry (first-use registration)
  // while holding the queue lock, so kPool must stay below kMetrics.
  Mutex mu_{"threadpool.queue", rank::kPool};
  CondVar task_cv_;
  CondVar done_cv_;
  std::queue<std::function<void()>> tasks_ DJ_GUARDED_BY(mu_);
  size_t in_flight_ DJ_GUARDED_BY(mu_) = 0;
  bool stop_ DJ_GUARDED_BY(mu_) = false;
};

}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_THREAD_POOL_H_
