// Runtime half of the allocation discipline (see alloc_guard.h). The
// global operator new/delete replacements live in THIS translation unit
// together with every public entry point, so linking any alloc_guard
// symbol from the static library pulls the replacement operators into the
// final binary (a strong definition in a linked object beats libstdc++'s
// archive default).
#include "util/alloc_guard.h"

#if defined(DJ_ALLOC_GUARD)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "util/metrics.h"
#endif

namespace deepjoin {
namespace alloc_guard {

#if defined(DJ_ALLOC_GUARD)

namespace {

// Per-thread guard state. Trivially initialised POD on purpose: the hooks
// run inside operator new, and a thread_local with a dynamic initialiser
// would recurse through the allocator during its own setup.
struct ThreadState {
  int ban_depth;
  const char* ban_why;
  const char* ban_file;
  unsigned ban_line;
  std::uint64_t allocs;
  std::uint64_t bytes;
};
thread_local ThreadState g_tls;

std::atomic<std::uint64_t> g_total_allocs{0};
std::atomic<std::uint64_t> g_total_bytes{0};

// Violation path: no allocation allowed here (we ARE the allocator), so
// plain fprintf + abort, mirroring lock_rank's Die().
[[noreturn]] void DieBannedAlloc(std::size_t size) {
  std::fprintf(stderr,
               "[dj_alloc_guard] FATAL: heap allocation of %zu bytes under "
               "ScopedAllocBan(\"%s\") installed at %s:%u\n",
               size, g_tls.ban_why ? g_tls.ban_why : "?",
               g_tls.ban_file ? g_tls.ban_file : "?", g_tls.ban_line);
  std::abort();
}

// Shared body of every operator new variant.
void* GuardedAlloc(std::size_t size, std::size_t align, bool can_throw) {
  ThreadState& s = g_tls;
  if (s.ban_depth > 0) DieBannedAlloc(size);
  ++s.allocs;
  s.bytes += size;
  g_total_allocs.fetch_add(1, std::memory_order_relaxed);
  g_total_bytes.fetch_add(size, std::memory_order_relaxed);
  // malloc(0) may return nullptr; operator new must return a unique
  // pointer, so allocate at least one byte.
  if (size == 0) size = 1;
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (size + align - 1) / align * align)
                : std::malloc(size);
  if (p == nullptr && can_throw) throw std::bad_alloc();
  return p;
}

}  // namespace

bool Enabled() { return true; }

ScopedAllocBan::ScopedAllocBan(const char* why, std::source_location loc)
    : prev_why_(g_tls.ban_why),
      prev_file_(g_tls.ban_file),
      prev_line_(g_tls.ban_line) {
  ThreadState& s = g_tls;
  ++s.ban_depth;
  s.ban_why = why;
  s.ban_file = loc.file_name();
  s.ban_line = loc.line();
}

ScopedAllocBan::~ScopedAllocBan() {
  ThreadState& s = g_tls;
  --s.ban_depth;
  s.ban_why = prev_why_;
  s.ban_file = prev_file_;
  s.ban_line = prev_line_;
}

ScopedAllocCount::ScopedAllocCount()
    : start_allocs_(g_tls.allocs), start_bytes_(g_tls.bytes) {}

std::uint64_t ScopedAllocCount::allocations() const {
  return g_tls.allocs - start_allocs_;
}

std::uint64_t ScopedAllocCount::bytes() const {
  return g_tls.bytes - start_bytes_;
}

std::uint64_t TotalAllocations() {
  return g_total_allocs.load(std::memory_order_relaxed);
}

std::uint64_t TotalBytes() {
  return g_total_bytes.load(std::memory_order_relaxed);
}

void PublishMetrics() {
  metrics::MetricsRegistry& reg = metrics::MetricsRegistry::Global();
  reg.GetGauge("dj_alloc_count")
      ->Set(static_cast<double>(TotalAllocations()));
  reg.GetGauge("dj_alloc_bytes")->Set(static_cast<double>(TotalBytes()));
}

#else  // !DJ_ALLOC_GUARD

bool Enabled() { return false; }
std::uint64_t TotalAllocations() { return 0; }
std::uint64_t TotalBytes() { return 0; }
void PublishMetrics() {}

#endif  // DJ_ALLOC_GUARD

}  // namespace alloc_guard
}  // namespace deepjoin

#if defined(DJ_ALLOC_GUARD)

// ---- Global operator new/delete replacements ----
// Deletes are never banned (releasing memory is always legal) and route
// straight to free(): every pointer we hand out came from malloc or
// aligned_alloc, both of which free() accepts.

void* operator new(std::size_t size) {
  return deepjoin::alloc_guard::GuardedAlloc(size, 0, /*can_throw=*/true);
}

void* operator new[](std::size_t size) {
  return deepjoin::alloc_guard::GuardedAlloc(size, 0, /*can_throw=*/true);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return deepjoin::alloc_guard::GuardedAlloc(size, 0, /*can_throw=*/false);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return deepjoin::alloc_guard::GuardedAlloc(size, 0, /*can_throw=*/false);
}

void* operator new(std::size_t size, std::align_val_t align) {
  return deepjoin::alloc_guard::GuardedAlloc(
      size, static_cast<std::size_t>(align), /*can_throw=*/true);
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return deepjoin::alloc_guard::GuardedAlloc(
      size, static_cast<std::size_t>(align), /*can_throw=*/true);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return deepjoin::alloc_guard::GuardedAlloc(
      size, static_cast<std::size_t>(align), /*can_throw=*/false);
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return deepjoin::alloc_guard::GuardedAlloc(
      size, static_cast<std::size_t>(align), /*can_throw=*/false);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // DJ_ALLOC_GUARD
