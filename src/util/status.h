// Lightweight Status / Result types for recoverable errors, in the spirit of
// absl::Status / arrow::Result. Library code returns these instead of
// throwing; DJ_CHECK is reserved for programming errors.
#ifndef DEEPJOIN_UTIL_STATUS_H_
#define DEEPJOIN_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/common.h"

namespace deepjoin {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kDataLoss,  ///< on-disk artifact is corrupt/truncated (unrecoverable read)
  kResourceExhausted,  ///< admission control: queue/capacity limit hit
  kDeadlineExceeded,   ///< request deadline expired before completion
};

/// Error-or-success carrier. Cheap to copy when OK (no message allocated).
/// [[nodiscard]]: a dropped Status is a swallowed error — every call site
/// must propagate (DJ_RETURN_IF_ERROR), branch on ok(), or spell out the
/// intent by casting through IgnoreError(). Enforced repo-wide by
/// -Werror=unused-result (see top-level CMakeLists.txt).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status DataLoss(std::string m) {
    return Status(StatusCode::kDataLoss, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Explicitly consumes an error the caller has decided not to act on
  /// (e.g. best-effort cleanup). Makes the discard grep-able.
  void IgnoreError() const {}

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  static std::string CodeName(StatusCode c) {
    switch (c) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kIoError: return "IoError";
      case StatusCode::kDataLoss: return "DataLoss";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// Value-or-Status, analogous to arrow::Result<T>.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}           // NOLINT
  Result(Status status) : status_(std::move(status)) {    // NOLINT
    DJ_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  const T& value() const& {
    DJ_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    DJ_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    DJ_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

#define DJ_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::deepjoin::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_STATUS_H_
