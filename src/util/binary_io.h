// Binary (de)serialization for on-disk artifacts (models, indexes,
// checkpoints), built on the injectable Env so fault-injection tests can
// prove crash-safety. The container format is versioned and CRC32C-framed:
//
//   file    := header record*
//   header  := magic:u32 ('DJF1') version:u32
//   record  := len:u64 crc:u32 payload[len]      payload := tag:u8 data*
//
// Every Write* call emits one record; the matching Read* validates the
// frame before touching the data: `len` is bounded by the bytes actually
// remaining in the file (a truncated or hostile length prefix surfaces as
// Status::DataLoss, never a multi-GB allocation), the CRC must match (any
// single-byte corruption is caught), and the tag must equal the type the
// caller asked for. Layout is native-endian via raw memcpy; files are not
// portable across endianness (documented limitation).
//
// Writers are sticky: Write* record the first error and Close() reports
// it. Use AtomicSave for crash-safe replacement of a whole artifact
// (tmp + flush + fsync + rename; the previous artifact survives any
// mid-save failure).
#ifndef DEEPJOIN_UTIL_BINARY_IO_H_
#define DEEPJOIN_UTIL_BINARY_IO_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/env.h"
#include "util/status.h"

namespace deepjoin {

inline constexpr u32 kBinaryIoMagic = 0x444A4631;  // "DJF1"
inline constexpr u32 kBinaryIoVersion = 1;
/// Bytes of framing per record: len:u64 + crc:u32.
inline constexpr u64 kRecordFraming = 12;
/// Alignment (and CRC granularity) of raw sections. A fixed 4 KiB — the
/// POSIX page size on every platform we target — so mapped sections start
/// on a page boundary and lazy validation is page-granular.
inline constexpr u64 kSectionPageSize = 4096;

/// Describes one page-aligned raw section (see WriteAlignedSection): where
/// the bytes live in the file and the checksums that validate them —
/// one CRC32C over the whole section (the full-check option) plus one per
/// kSectionPageSize page (lazy per-page-range validation of mapped
/// sections). The metadata itself travels in a CRC-framed record, so a
/// reader can trust offset/length before touching the (possibly huge,
/// possibly unread) section bytes.
struct SectionInfo {
  u64 offset = 0;  ///< absolute file offset of the raw bytes (page-aligned)
  u64 length = 0;  ///< raw byte count (not padded)
  u32 crc = 0;     ///< CRC32C of the whole section
  std::vector<u32> page_crcs;  ///< CRC32C per page (last may be partial)
};

class BinaryWriter {
 public:
  /// Writes to `path` through `env` (nullptr → Env::Default()). Call
  /// Open() before the first Write*.
  explicit BinaryWriter(std::string path, Env* env = nullptr);
  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  /// Creates/truncates the file and writes the container header.
  Status Open();

  void WriteU32(u32 v);
  void WriteU64(u64 v);
  void WriteI32(i32 v);
  void WriteFloat(float v);
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  void WriteFloatArray(const float* data, size_t n);
  void WriteU32Array(const u32* data, size_t n);
  void WriteI32Array(const i32* data, size_t n);

  /// Page-aligned raw section: emits a section metadata record (absolute
  /// offset, length, full + per-page CRC32Cs), zero-pads the file to the
  /// next kSectionPageSize boundary, then appends `data` verbatim. The
  /// matching read is ReadSection, after which the section bytes can be
  /// pread (ReadSectionBytes) or memory-mapped (Env::NewMappedRegion of
  /// the described range — zero-copy, the offset is page-aligned).
  void WriteAlignedSection(const void* data, u64 n);

  /// Bytes appended so far (header + records + padding + sections).
  u64 bytes_written() const { return written_; }

  /// First error seen by Open/Write*, or OK.
  Status status() const { return status_; }

  /// Flush + fsync + close. Returns the sticky error if any write failed.
  Status Close();

 private:
  void WriteRecord(u8 tag, const void* data, size_t n);

  std::string path_;
  Env* env_;
  std::unique_ptr<WritableFile> file_;
  Status status_;
  std::string scratch_;
  u64 written_ = 0;
};

class BinaryReader {
 public:
  /// Reads from `path` through `env` (nullptr → Env::Default()). Call
  /// Open() before the first Read*.
  explicit BinaryReader(std::string path, Env* env = nullptr);

  /// Opens the file and validates the container header (magic + version).
  Status Open();

  Status ReadU32(u32* out);
  Status ReadU64(u64* out);
  Status ReadI32(i32* out);
  Status ReadFloat(float* out);
  Status ReadDouble(double* out);
  Status ReadString(std::string* out);
  Status ReadFloatArray(std::vector<float>* out);
  Status ReadU32Array(std::vector<u32>* out);
  Status ReadI32Array(std::vector<i32>* out);

  /// Reads a section metadata record and validates it against the file
  /// (page-aligned offset past the cursor, in-bounds length, consistent
  /// page-CRC count); the cursor advances past the section bytes without
  /// reading them — an open stays O(1) in the section size. The bytes are
  /// then fetched with ReadSectionBytes or mapped via env()/path().
  Status ReadSection(SectionInfo* out);

  /// Preads the whole section and verifies its full CRC32C (DataLoss on
  /// mismatch) — the owned, eagerly-validated load path.
  Status ReadSectionBytes(const SectionInfo& info, std::string* out);

  const std::string& path() const { return path_; }
  Env* env() const { return env_; }

  /// Bytes between the cursor and end of file. A loader expecting N more
  /// variable-count records can reject counts that cannot possibly fit.
  u64 remaining() const { return size_ - offset_; }
  bool AtEnd() const { return offset_ == size_; }

 private:
  template <typename T>
  Status ReadScalar(u8 tag, T* out);
  template <typename T>
  Status ReadArray(u8 tag, std::vector<T>* out);
  /// Reads and validates one record frame; on OK, `payload_` holds
  /// tag + data and the cursor has advanced past the record.
  Status ReadRecord(u8 expected_tag);

  std::string path_;
  Env* env_;
  std::unique_ptr<RandomAccessFile> file_;
  u64 size_ = 0;
  u64 offset_ = 0;
  std::string payload_;
};

/// Crash-safe artifact replacement: opens a BinaryWriter on `path`.tmp,
/// runs `fill`, then flush + fsync + rename over `path`. On any failure
/// (including injected ones) the tmp file is removed, `path` still holds
/// the previous artifact (or still does not exist), and the error is
/// returned. Not safe for concurrent saves to the same path.
Status AtomicSave(const std::string& path, Env* env,
                  const std::function<Status(BinaryWriter&)>& fill);

}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_BINARY_IO_H_
