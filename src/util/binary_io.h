// Binary (de)serialization for on-disk artifacts (models, indexes,
// checkpoints), built on the injectable Env so fault-injection tests can
// prove crash-safety. The container format is versioned and CRC32C-framed:
//
//   file    := header record*
//   header  := magic:u32 ('DJF1') version:u32
//   record  := len:u64 crc:u32 payload[len]      payload := tag:u8 data*
//
// Every Write* call emits one record; the matching Read* validates the
// frame before touching the data: `len` is bounded by the bytes actually
// remaining in the file (a truncated or hostile length prefix surfaces as
// Status::DataLoss, never a multi-GB allocation), the CRC must match (any
// single-byte corruption is caught), and the tag must equal the type the
// caller asked for. Layout is native-endian via raw memcpy; files are not
// portable across endianness (documented limitation).
//
// Writers are sticky: Write* record the first error and Close() reports
// it. Use AtomicSave for crash-safe replacement of a whole artifact
// (tmp + flush + fsync + rename; the previous artifact survives any
// mid-save failure).
#ifndef DEEPJOIN_UTIL_BINARY_IO_H_
#define DEEPJOIN_UTIL_BINARY_IO_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/env.h"
#include "util/status.h"

namespace deepjoin {

inline constexpr u32 kBinaryIoMagic = 0x444A4631;  // "DJF1"
inline constexpr u32 kBinaryIoVersion = 1;
/// Bytes of framing per record: len:u64 + crc:u32.
inline constexpr u64 kRecordFraming = 12;

class BinaryWriter {
 public:
  /// Writes to `path` through `env` (nullptr → Env::Default()). Call
  /// Open() before the first Write*.
  explicit BinaryWriter(std::string path, Env* env = nullptr);
  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  /// Creates/truncates the file and writes the container header.
  Status Open();

  void WriteU32(u32 v);
  void WriteU64(u64 v);
  void WriteI32(i32 v);
  void WriteFloat(float v);
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  void WriteFloatArray(const float* data, size_t n);
  void WriteU32Array(const u32* data, size_t n);
  void WriteI32Array(const i32* data, size_t n);

  /// First error seen by Open/Write*, or OK.
  Status status() const { return status_; }

  /// Flush + fsync + close. Returns the sticky error if any write failed.
  Status Close();

 private:
  void WriteRecord(u8 tag, const void* data, size_t n);

  std::string path_;
  Env* env_;
  std::unique_ptr<WritableFile> file_;
  Status status_;
  std::string scratch_;
};

class BinaryReader {
 public:
  /// Reads from `path` through `env` (nullptr → Env::Default()). Call
  /// Open() before the first Read*.
  explicit BinaryReader(std::string path, Env* env = nullptr);

  /// Opens the file and validates the container header (magic + version).
  Status Open();

  Status ReadU32(u32* out);
  Status ReadU64(u64* out);
  Status ReadI32(i32* out);
  Status ReadFloat(float* out);
  Status ReadDouble(double* out);
  Status ReadString(std::string* out);
  Status ReadFloatArray(std::vector<float>* out);
  Status ReadU32Array(std::vector<u32>* out);
  Status ReadI32Array(std::vector<i32>* out);

  /// Bytes between the cursor and end of file. A loader expecting N more
  /// variable-count records can reject counts that cannot possibly fit.
  u64 remaining() const { return size_ - offset_; }
  bool AtEnd() const { return offset_ == size_; }

 private:
  template <typename T>
  Status ReadScalar(u8 tag, T* out);
  template <typename T>
  Status ReadArray(u8 tag, std::vector<T>* out);
  /// Reads and validates one record frame; on OK, `payload_` holds
  /// tag + data and the cursor has advanced past the record.
  Status ReadRecord(u8 expected_tag);

  std::string path_;
  Env* env_;
  std::unique_ptr<RandomAccessFile> file_;
  u64 size_ = 0;
  u64 offset_ = 0;
  std::string payload_;
};

/// Crash-safe artifact replacement: opens a BinaryWriter on `path`.tmp,
/// runs `fill`, then flush + fsync + rename over `path`. On any failure
/// (including injected ones) the tmp file is removed, `path` still holds
/// the previous artifact (or still does not exist), and the error is
/// returned. Not safe for concurrent saves to the same path.
Status AtomicSave(const std::string& path, Env* env,
                  const std::function<Status(BinaryWriter&)>& fill);

}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_BINARY_IO_H_
