// Minimal binary (de)serialization over files. Fixed little-endian-style
// layout via raw writes of fixed-width types; used for model and vocab
// persistence. Not portable across endianness (documented limitation).
#ifndef DEEPJOIN_UTIL_BINARY_IO_H_
#define DEEPJOIN_UTIL_BINARY_IO_H_

#include <cstdio>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/status.h"

namespace deepjoin {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path)
      : file_(std::fopen(path.c_str(), "wb")) {}
  ~BinaryWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  bool ok() const { return file_ != nullptr && !failed_; }

  void WriteU32(u32 v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(u64 v) { WriteRaw(&v, sizeof(v)); }
  void WriteI32(i32 v) { WriteRaw(&v, sizeof(v)); }
  void WriteFloat(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteString(const std::string& s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }
  void WriteFloatArray(const float* data, size_t n) {
    WriteU64(n);
    WriteRaw(data, n * sizeof(float));
  }

  Status Close() {
    if (file_ == nullptr) return Status::IoError("open failed");
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0 || failed_) return Status::IoError("write failed");
    return Status::OK();
  }

 private:
  void WriteRaw(const void* data, size_t n) {
    if (file_ == nullptr || n == 0) return;
    if (std::fwrite(data, 1, n, file_) != n) failed_ = true;
  }
  std::FILE* file_;
  bool failed_ = false;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : file_(std::fopen(path.c_str(), "rb")) {}
  ~BinaryReader() {
    if (file_ != nullptr) std::fclose(file_);
  }
  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  bool ok() const { return file_ != nullptr && !failed_; }

  u32 ReadU32() { return ReadValue<u32>(); }
  u64 ReadU64() { return ReadValue<u64>(); }
  i32 ReadI32() { return ReadValue<i32>(); }
  float ReadFloat() { return ReadValue<float>(); }
  double ReadDouble() { return ReadValue<double>(); }
  std::string ReadString() {
    const u64 n = ReadU64();
    std::string s(n, '\0');
    ReadRaw(s.data(), n);
    return s;
  }
  std::vector<float> ReadFloatArray() {
    const u64 n = ReadU64();
    std::vector<float> v(n);
    ReadRaw(v.data(), n * sizeof(float));
    return v;
  }

 private:
  template <typename T>
  T ReadValue() {
    T v{};
    ReadRaw(&v, sizeof(v));
    return v;
  }
  void ReadRaw(void* data, size_t n) {
    if (file_ == nullptr || n == 0) return;
    if (std::fread(data, 1, n, file_) != n) failed_ = true;
  }
  std::FILE* file_;
  bool failed_ = false;
};

}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_BINARY_IO_H_
