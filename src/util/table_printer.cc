#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace deepjoin {

void TablePrinter::Print(const std::string& title) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  size_t total = 0;
  for (size_t w : widths) total += w + 3;

  // TablePrinter is the one sanctioned stdout sink in the library: bench
  // and tools route their report tables through it by contract.
  std::printf("\n=== %s ===\n", title.c_str());  // dj_lint: allow(no-printf)
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      // dj_lint: allow(no-printf)
      std::printf("%-*s | ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");  // dj_lint: allow(no-printf)
  };
  print_row(header_);
  for (size_t i = 0; i < total; ++i) {
    std::printf("-");  // dj_lint: allow(no-printf)
  }
  std::printf("\n");  // dj_lint: allow(no-printf)
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

}  // namespace deepjoin
