#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace deepjoin {

void TablePrinter::Print(const std::string& title) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  size_t total = 0;
  for (size_t w : widths) total += w + 3;

  std::printf("\n=== %s ===\n", title.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      std::printf("%-*s | ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  for (size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

}  // namespace deepjoin
