// Deterministic pseudo-random number generation. Every stochastic component
// in the library (data generation, shuffling augmentation, model init,
// k-means seeding, HNSW level draws) takes an explicit Rng so that runs are
// reproducible from a single seed.
#ifndef DEEPJOIN_UTIL_RNG_H_
#define DEEPJOIN_UTIL_RNG_H_

#include <cmath>
#include <vector>

#include "util/common.h"

namespace deepjoin {

/// splitmix64: used to expand a single seed into xoshiro state.
inline u64 SplitMix64(u64& state) {
  u64 z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Small, fast, statistically strong enough for
/// simulation workloads; not for cryptography.
class Rng {
 public:
  explicit Rng(u64 seed = 42) {
    u64 sm = seed;
    for (auto& s : state_) s = SplitMix64(sm);
  }

  u64 NextU64() {
    const u64 result = Rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  u64 UniformU64(u64 n) {
    DJ_CHECK(n > 0);
    // Rejection sampling to avoid modulo bias.
    const u64 threshold = (~n + 1) % n;  // == 2^64 mod n
    for (;;) {
      u64 r = NextU64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  i64 UniformInt(i64 lo, i64 hi) {
    DJ_CHECK(lo <= hi);
    return lo + static_cast<i64>(UniformU64(static_cast<u64>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal via Box-Muller (no caching; simple and adequate).
  double Normal() {
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Geometric-ish exponential draw; used for HNSW level assignment.
  double Exponential(double lambda) {
    double u = UniformDouble();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / lambda;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) without replacement
  /// (partial Fisher-Yates over an index vector; fine at our scales).
  std::vector<size_t> SampleIndices(size_t n, size_t k) {
    if (k > n) k = n;
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + static_cast<size_t>(UniformU64(n - i));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }

  /// Forks an independent stream; children are decorrelated from the parent.
  Rng Fork() { return Rng(NextU64() ^ 0xda3e39cb94b95bdbULL); }

  /// Checkpointing support: copies out / restores the raw xoshiro state so
  /// a resumed run replays the exact draw sequence (see core/trainer.h).
  void GetState(u64 out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }
  void SetState(const u64 in[4]) {
    for (int i = 0; i < 4; ++i) state_[i] = in[i];
  }

 private:
  static u64 Rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 state_[4];
};

/// Zipf(s) sampler over ranks [0, n). Precomputes the CDF; O(log n) draws.
/// Used to give cell values a realistic skewed frequency distribution.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    DJ_CHECK(n > 0);
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  size_t Sample(Rng& rng) const {
    double u = rng.UniformDouble();
    // Binary search for the first cdf entry >= u.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_RNG_H_
