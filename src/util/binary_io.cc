#include "util/binary_io.h"

#include <algorithm>
#include <cstring>

#include "util/crc32c.h"

namespace deepjoin {

namespace {

enum RecordTag : u8 {
  kTagU32 = 1,
  kTagU64 = 2,
  kTagI32 = 3,
  kTagFloat = 4,
  kTagDouble = 5,
  kTagString = 6,
  kTagFloatArray = 7,
  kTagU32Array = 8,
  kTagI32Array = 9,
  kTagSection = 10,
};

// Section metadata payload (after the tag byte): offset:u64 length:u64
// full_crc:u32 page_size:u32, then one u32 CRC per page.
constexpr size_t kSectionHeaderBytes = 8 + 8 + 4 + 4;

u64 AlignUpToPage(u64 v) {
  return (v + kSectionPageSize - 1) & ~(kSectionPageSize - 1);
}

}  // namespace

// ---- BinaryWriter ----

BinaryWriter::BinaryWriter(std::string path, Env* env)
    : path_(std::move(path)), env_(env != nullptr ? env : Env::Default()) {}

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) file_->Close().IgnoreError();
}

Status BinaryWriter::Open() {
  DJ_RETURN_IF_ERROR(env_->NewWritableFile(path_, &file_));
  const u32 header[2] = {kBinaryIoMagic, kBinaryIoVersion};
  status_ = file_->Append(header, sizeof(header));
  if (status_.ok()) written_ = sizeof(header);
  return status_;
}

void BinaryWriter::WriteRecord(u8 tag, const void* data, size_t n) {
  if (!status_.ok()) return;
  if (file_ == nullptr) {
    status_ = Status::FailedPrecondition("BinaryWriter used before Open()");
    return;
  }
  const u64 len = 1 + n;
  u32 crc = Crc32c(&tag, 1);
  crc = Crc32cExtend(crc, data, n);
  scratch_.clear();
  scratch_.reserve(kRecordFraming + len);
  scratch_.append(reinterpret_cast<const char*>(&len), sizeof(len));
  scratch_.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  scratch_.push_back(static_cast<char>(tag));
  if (n > 0) scratch_.append(static_cast<const char*>(data), n);
  status_ = file_->Append(scratch_.data(), scratch_.size());
  if (status_.ok()) written_ += scratch_.size();
}

void BinaryWriter::WriteAlignedSection(const void* data, u64 n) {
  if (!status_.ok()) return;
  if (file_ == nullptr) {
    status_ = Status::FailedPrecondition("BinaryWriter used before Open()");
    return;
  }
  const u64 npages = (n + kSectionPageSize - 1) / kSectionPageSize;
  // The metadata record carries the section's absolute offset, which
  // depends on the record's own (fixed, computable) size: frame + tag +
  // header + one CRC per page, rounded up to the next page boundary.
  const u64 payload_bytes = kSectionHeaderBytes + npages * sizeof(u32);
  const u64 data_offset =
      AlignUpToPage(written_ + kRecordFraming + 1 + payload_bytes);

  std::string payload;
  payload.reserve(payload_bytes);
  const u64 len64 = n;
  u32 full_crc = Crc32c(data, n);
  const u32 page_size32 = static_cast<u32>(kSectionPageSize);
  payload.append(reinterpret_cast<const char*>(&data_offset),
                 sizeof(data_offset));
  payload.append(reinterpret_cast<const char*>(&len64), sizeof(len64));
  payload.append(reinterpret_cast<const char*>(&full_crc), sizeof(full_crc));
  payload.append(reinterpret_cast<const char*>(&page_size32),
                 sizeof(page_size32));
  const char* bytes = static_cast<const char*>(data);
  for (u64 p = 0; p < npages; ++p) {
    const u64 page_len =
        std::min<u64>(kSectionPageSize, n - p * kSectionPageSize);
    const u32 page_crc = Crc32c(bytes + p * kSectionPageSize, page_len);
    payload.append(reinterpret_cast<const char*>(&page_crc),
                   sizeof(page_crc));
  }
  WriteRecord(kTagSection, payload.data(), payload.size());
  if (!status_.ok()) return;

  // Zero padding up to the promised page boundary, then the raw bytes.
  DJ_CHECK(data_offset >= written_);
  static constexpr char kZeros[256] = {};
  u64 pad = data_offset - written_;
  while (pad > 0 && status_.ok()) {
    const u64 step = std::min<u64>(pad, sizeof(kZeros));
    status_ = file_->Append(kZeros, step);
    if (status_.ok()) {
      written_ += step;
      pad -= step;
    }
  }
  if (!status_.ok()) return;
  if (n > 0) {
    status_ = file_->Append(data, n);
    if (status_.ok()) written_ += n;
  }
}

void BinaryWriter::WriteU32(u32 v) { WriteRecord(kTagU32, &v, sizeof(v)); }
void BinaryWriter::WriteU64(u64 v) { WriteRecord(kTagU64, &v, sizeof(v)); }
void BinaryWriter::WriteI32(i32 v) { WriteRecord(kTagI32, &v, sizeof(v)); }
void BinaryWriter::WriteFloat(float v) {
  WriteRecord(kTagFloat, &v, sizeof(v));
}
void BinaryWriter::WriteDouble(double v) {
  WriteRecord(kTagDouble, &v, sizeof(v));
}
void BinaryWriter::WriteString(const std::string& s) {
  WriteRecord(kTagString, s.data(), s.size());
}
void BinaryWriter::WriteFloatArray(const float* data, size_t n) {
  WriteRecord(kTagFloatArray, data, n * sizeof(float));
}
void BinaryWriter::WriteU32Array(const u32* data, size_t n) {
  WriteRecord(kTagU32Array, data, n * sizeof(u32));
}
void BinaryWriter::WriteI32Array(const i32* data, size_t n) {
  WriteRecord(kTagI32Array, data, n * sizeof(i32));
}

Status BinaryWriter::Close() {
  if (file_ == nullptr) {
    if (status_.ok()) {
      status_ = Status::FailedPrecondition("Close() before Open()");
    }
    return status_;
  }
  if (status_.ok()) status_ = file_->Flush();
  if (status_.ok()) status_ = file_->Sync();
  Status close_st = file_->Close();
  if (status_.ok()) status_ = std::move(close_st);
  file_.reset();
  return status_;
}

// ---- BinaryReader ----

BinaryReader::BinaryReader(std::string path, Env* env)
    : path_(std::move(path)), env_(env != nullptr ? env : Env::Default()) {}

Status BinaryReader::Open() {
  DJ_RETURN_IF_ERROR(env_->GetFileSize(path_, &size_));
  DJ_RETURN_IF_ERROR(env_->NewRandomAccessFile(path_, &file_));
  u32 header[2] = {0, 0};
  if (size_ < sizeof(header)) {
    return Status::DataLoss(path_ + ": truncated header");
  }
  size_t read = 0;
  DJ_RETURN_IF_ERROR(file_->Read(0, sizeof(header), header, &read));
  if (read != sizeof(header)) {
    return Status::DataLoss(path_ + ": truncated header");
  }
  if (header[0] != kBinaryIoMagic) {
    return Status::DataLoss(path_ + ": bad container magic");
  }
  if (header[1] != kBinaryIoVersion) {
    return Status::DataLoss(path_ + ": unsupported container version " +
                            std::to_string(header[1]));
  }
  offset_ = sizeof(header);
  return Status::OK();
}

Status BinaryReader::ReadRecord(u8 expected_tag) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("BinaryReader used before Open()");
  }
  if (remaining() < kRecordFraming) {
    return Status::DataLoss(path_ + ": truncated record frame");
  }
  u64 len = 0;
  u32 crc = 0;
  char frame[kRecordFraming];
  size_t read = 0;
  DJ_RETURN_IF_ERROR(file_->Read(offset_, sizeof(frame), frame, &read));
  if (read != sizeof(frame)) {
    return Status::DataLoss(path_ + ": truncated record frame");
  }
  std::memcpy(&len, frame, sizeof(len));
  std::memcpy(&crc, frame + sizeof(len), sizeof(crc));
  // The bounded read: a length prefix can never demand more bytes than the
  // file actually holds past the frame.
  if (len < 1 || len > remaining() - kRecordFraming) {
    return Status::DataLoss(path_ + ": record length " + std::to_string(len) +
                            " exceeds remaining file size");
  }
  payload_.resize(len);
  DJ_RETURN_IF_ERROR(
      file_->Read(offset_ + kRecordFraming, len, payload_.data(), &read));
  if (read != len) {
    return Status::DataLoss(path_ + ": truncated record payload");
  }
  if (Crc32c(payload_.data(), payload_.size()) != crc) {
    return Status::DataLoss(path_ + ": record checksum mismatch");
  }
  if (static_cast<u8>(payload_[0]) != expected_tag) {
    return Status::DataLoss(path_ + ": record type mismatch (found tag " +
                            std::to_string(static_cast<u8>(payload_[0])) +
                            ", want " + std::to_string(expected_tag) + ")");
  }
  offset_ += kRecordFraming + len;
  return Status::OK();
}

template <typename T>
Status BinaryReader::ReadScalar(u8 tag, T* out) {
  DJ_RETURN_IF_ERROR(ReadRecord(tag));
  if (payload_.size() != 1 + sizeof(T)) {
    return Status::DataLoss(path_ + ": scalar record has wrong size");
  }
  std::memcpy(out, payload_.data() + 1, sizeof(T));
  return Status::OK();
}

template <typename T>
Status BinaryReader::ReadArray(u8 tag, std::vector<T>* out) {
  DJ_RETURN_IF_ERROR(ReadRecord(tag));
  const size_t bytes = payload_.size() - 1;
  if (bytes % sizeof(T) != 0) {
    return Status::DataLoss(path_ + ": array record size not a multiple of " +
                            std::to_string(sizeof(T)));
  }
  out->resize(bytes / sizeof(T));
  if (bytes > 0) {  // data() of an empty vector may be null
    std::memcpy(out->data(), payload_.data() + 1, bytes);
  }
  return Status::OK();
}

Status BinaryReader::ReadU32(u32* out) { return ReadScalar(kTagU32, out); }
Status BinaryReader::ReadU64(u64* out) { return ReadScalar(kTagU64, out); }
Status BinaryReader::ReadI32(i32* out) { return ReadScalar(kTagI32, out); }
Status BinaryReader::ReadFloat(float* out) {
  return ReadScalar(kTagFloat, out);
}
Status BinaryReader::ReadDouble(double* out) {
  return ReadScalar(kTagDouble, out);
}
Status BinaryReader::ReadString(std::string* out) {
  DJ_RETURN_IF_ERROR(ReadRecord(kTagString));
  out->assign(payload_.data() + 1, payload_.size() - 1);
  return Status::OK();
}
Status BinaryReader::ReadFloatArray(std::vector<float>* out) {
  return ReadArray(kTagFloatArray, out);
}
Status BinaryReader::ReadU32Array(std::vector<u32>* out) {
  return ReadArray(kTagU32Array, out);
}
Status BinaryReader::ReadI32Array(std::vector<i32>* out) {
  return ReadArray(kTagI32Array, out);
}

Status BinaryReader::ReadSection(SectionInfo* out) {
  DJ_RETURN_IF_ERROR(ReadRecord(kTagSection));
  if (payload_.size() < 1 + kSectionHeaderBytes) {
    return Status::DataLoss(path_ + ": section record too short");
  }
  SectionInfo info;
  u32 page_size = 0;
  const char* p = payload_.data() + 1;
  std::memcpy(&info.offset, p, sizeof(info.offset));
  p += sizeof(info.offset);
  std::memcpy(&info.length, p, sizeof(info.length));
  p += sizeof(info.length);
  std::memcpy(&info.crc, p, sizeof(info.crc));
  p += sizeof(info.crc);
  std::memcpy(&page_size, p, sizeof(page_size));
  p += sizeof(page_size);
  if (page_size != kSectionPageSize) {
    return Status::DataLoss(path_ + ": section page size " +
                            std::to_string(page_size) + " (want " +
                            std::to_string(kSectionPageSize) + ")");
  }
  // The section must sit past this record (the cursor already advanced
  // over it), start on a page boundary, and fit in the file. Anything
  // else is corruption, caught before a caller maps or preads the range.
  if (info.offset % kSectionPageSize != 0) {
    return Status::DataLoss(path_ + ": section offset not page-aligned");
  }
  if (info.offset < offset_ || info.length > size_ ||
      info.offset > size_ - info.length) {
    return Status::DataLoss(path_ + ": section range [" +
                            std::to_string(info.offset) + ", +" +
                            std::to_string(info.length) +
                            ") out of file bounds");
  }
  const u64 npages = (info.length + kSectionPageSize - 1) / kSectionPageSize;
  const u64 crc_bytes = payload_.size() - 1 - kSectionHeaderBytes;
  if (crc_bytes != npages * sizeof(u32)) {
    return Status::DataLoss(path_ + ": section page-CRC count mismatch");
  }
  info.page_crcs.resize(npages);
  if (npages > 0) std::memcpy(info.page_crcs.data(), p, crc_bytes);
  // The zero padding between this record and the section start is the one
  // byte range no CRC covers — verify it explicitly so every byte of the
  // file is validated by something. The writer always pads less than one
  // page, so this read is bounded and the open stays O(1) in the section
  // size (which is the part that gets skipped below).
  const u64 pad = info.offset - offset_;
  if (pad >= kSectionPageSize) {
    return Status::DataLoss(path_ + ": section padding exceeds one page");
  }
  if (pad > 0) {
    char padbuf[kSectionPageSize];
    size_t read = 0;
    DJ_RETURN_IF_ERROR(file_->Read(offset_, pad, padbuf, &read));
    if (read != pad) {
      return Status::DataLoss(path_ + ": truncated section padding");
    }
    for (u64 i = 0; i < pad; ++i) {
      if (padbuf[i] != 0) {
        return Status::DataLoss(path_ + ": nonzero section padding");
      }
    }
  }
  // Skip the section bytes without reading them: opening a file stays
  // O(1) in the section size.
  offset_ = info.offset + info.length;
  *out = std::move(info);
  return Status::OK();
}

Status BinaryReader::ReadSectionBytes(const SectionInfo& info,
                                      std::string* out) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("BinaryReader used before Open()");
  }
  out->resize(info.length);
  if (info.length > 0) {
    size_t read = 0;
    DJ_RETURN_IF_ERROR(
        file_->Read(info.offset, info.length, out->data(), &read));
    if (read != info.length) {
      return Status::DataLoss(path_ + ": truncated section bytes");
    }
  }
  if (Crc32c(out->data(), out->size()) != info.crc) {
    return Status::DataLoss(path_ + ": section checksum mismatch");
  }
  return Status::OK();
}

// ---- AtomicSave ----

Status AtomicSave(const std::string& path, Env* env,
                  const std::function<Status(BinaryWriter&)>& fill) {
  if (env == nullptr) env = Env::Default();
  const std::string tmp = path + ".tmp";
  Status st;
  {
    BinaryWriter writer(tmp, env);
    st = writer.Open();
    if (st.ok()) st = fill(writer);
    if (st.ok()) {
      st = writer.Close();
    } else {
      writer.Close().IgnoreError();
    }
  }
  if (!st.ok()) {
    if (env->FileExists(tmp)) env->RemoveFile(tmp).IgnoreError();
    return st;
  }
  st = env->RenameFile(tmp, path);
  if (!st.ok() && env->FileExists(tmp)) env->RemoveFile(tmp).IgnoreError();
  return st;
}

}  // namespace deepjoin
