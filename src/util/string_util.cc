#include "util/string_util.h"

#include <cstdio>

namespace deepjoin {

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

void AppendU64(unsigned long long v, std::string* out) {
  char buf[24];
  char* end = buf + sizeof(buf);
  char* p = end;
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  // Appends into the caller's capacity-reusing buffer; steady state
  // performs no allocation once the buffer has grown to its working size.
  out->append(p, end);  // dj_alloc: allow(alloc)
}

void AppendFixed(double v, int precision, std::string* out) {
  char buf[64];
  const int n = std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  if (n <= 0) return;
  // Same capacity-reuse contract as AppendU64 above.
  out->append(buf,  // dj_alloc: allow(alloc)
              static_cast<size_t>(n) < sizeof(buf) ? static_cast<size_t>(n)
                                                   : sizeof(buf) - 1);
}

}  // namespace deepjoin
