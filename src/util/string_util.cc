#include "util/string_util.h"

#include <cstdio>

namespace deepjoin {

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

}  // namespace deepjoin
