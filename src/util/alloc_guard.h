// Allocation-discipline runtime (DESIGN.md §11): global operator new /
// delete hooks with thread-local allocation bans and tallies, plus the
// DJ_NOALLOC source annotation consumed by tools/dj_alloc.
//
// The contract mirrors the lock-rank layer (src/util/lock_rank.h): the
// hooks compile in only under -DDJ_ALLOC_GUARD (CMake option
// DJ_ALLOC_GUARD, defaulted ON for Debug and sanitizer builds). A release
// build pays nothing — the scoped guards collapse to empty structs and the
// global operator new replacements are not compiled at all.
//
// Two scoped guards:
//
//   alloc_guard::ScopedAllocBan ban("hnsw steady-state search");
//     Any heap allocation on THIS thread while the ban is in scope aborts,
//     printing the ban site (file:line + reason) and the allocation size.
//     Bans nest; the innermost ban site is reported. operator delete is
//     never banned — releasing memory back is always legal.
//
//   alloc_guard::ScopedAllocCount tally;
//     Counts this thread's allocations and allocated bytes between
//     construction and the allocations()/bytes() calls. Used by the
//     allocs-per-op bench counters and the steady-state searcher test.
//
// DJ_NOALLOC is a pure lexical marker (expands to nothing): placing it on
// a function declaration promises the function performs no heap
// allocation on any path. tools/dj_alloc runs a transitive may-allocate
// fixpoint over the call graph and fails the lint label when an annotated
// function can reach an allocation, printing the witness call chain.
// Header declarations are inherited by their .cc definitions, like
// DJ_REQUIRES in tools/dj_deadlock. Known-cold allocations (one-time pool
// warmup, growth of a capacity-reusing scratch buffer) are suppressed at
// the site with `// dj_alloc: allow(alloc)` plus a justification.
#ifndef DEEPJOIN_UTIL_ALLOC_GUARD_H_
#define DEEPJOIN_UTIL_ALLOC_GUARD_H_

#include <cstddef>
#include <cstdint>

#if defined(DJ_ALLOC_GUARD)
#include <source_location>
#endif

// Lexical annotation: "this function allocates nothing on any path".
// Enforced statically by tools/dj_alloc; carries no runtime semantics.
#define DJ_NOALLOC

namespace deepjoin {
namespace alloc_guard {

/// True when the tree was compiled with -DDJ_ALLOC_GUARD (the operator
/// new/delete replacements below are live). Tests use this to skip the
/// runtime-enforcement cases in builds where the layer is compiled out,
/// and bench_micro gates its allocs-per-op counters on it.
bool Enabled();

#if defined(DJ_ALLOC_GUARD)

/// Thread-local allocation ban. While any ban is in scope on a thread,
/// operator new (all variants) aborts with the ban site and the requested
/// size. Nested bans are allowed; violations report the innermost site.
class ScopedAllocBan {
 public:
  explicit ScopedAllocBan(
      const char* why,
      std::source_location loc = std::source_location::current());
  ~ScopedAllocBan();
  ScopedAllocBan(const ScopedAllocBan&) = delete;
  ScopedAllocBan& operator=(const ScopedAllocBan&) = delete;

 private:
  const char* prev_why_;
  const char* prev_file_;
  unsigned prev_line_;
};

/// Tally of this thread's allocations since construction. Scopes nest
/// independently (each snapshot the thread totals at construction).
class ScopedAllocCount {
 public:
  ScopedAllocCount();
  /// Allocation calls on this thread since construction.
  std::uint64_t allocations() const;
  /// Bytes requested on this thread since construction.
  std::uint64_t bytes() const;

 private:
  std::uint64_t start_allocs_;
  std::uint64_t start_bytes_;
};

#else  // !DJ_ALLOC_GUARD — zero-cost shims, same shapes.

class ScopedAllocBan {
 public:
  explicit ScopedAllocBan(const char*) {}
  ScopedAllocBan(const ScopedAllocBan&) = delete;
  ScopedAllocBan& operator=(const ScopedAllocBan&) = delete;
};

class ScopedAllocCount {
 public:
  ScopedAllocCount() = default;
  std::uint64_t allocations() const { return 0; }
  std::uint64_t bytes() const { return 0; }
};

#endif  // DJ_ALLOC_GUARD

/// Process-wide totals across all threads (0 when compiled out).
std::uint64_t TotalAllocations();
std::uint64_t TotalBytes();

/// Copies the process-wide totals into the MetricsRegistry
/// (dj_alloc_count, dj_alloc_bytes) so the snapshot path exports them.
/// Called on demand (dj_stats) rather than from the hooks — the hooks run
/// inside operator new, where touching the registry would recurse — and
/// never under a ban (it allocates registry keys on first use).
void PublishMetrics();

}  // namespace alloc_guard
}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_ALLOC_GUARD_H_
