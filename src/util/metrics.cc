#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace deepjoin {
namespace metrics {

namespace internal {

namespace {
bool EnabledFromEnvironment() {
  const char* v = std::getenv("DJ_METRICS");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
           std::strcmp(v, "false") == 0);
}
}  // namespace

std::atomic<bool> g_enabled{EnabledFromEnvironment()};

}  // namespace internal

bool SetEnabledForTest(bool enabled) {
  return internal::g_enabled.exchange(enabled, std::memory_order_relaxed);
}

// ---- Histogram -------------------------------------------------------------

const std::vector<double>& Histogram::DefaultLatencyBucketsMs() {
  static const std::vector<double>* const kBuckets = [] {
    auto b = std::make_unique<std::vector<double>>(std::vector<double>{
        0.001, 0.0025, 0.005, 0.01,  0.025, 0.05,  0.1,    0.25,
        0.5,   1.0,    2.5,   5.0,   10.0,  25.0,  50.0,   100.0,
        250.0, 500.0,  1000.0, 2500.0});
    return b.release();
  }();
  return *kBuckets;
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  DJ_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  DJ_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must ascend");
  buckets_ = std::make_unique<std::atomic<u64>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(double value) {
  if (!Enabled()) return;
  // First bound >= value is the owning bucket (le semantics); everything
  // beyond the last bound lands in the overflow slot.
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

// ---- Registry --------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = [] {
    return std::make_unique<MetricsRegistry>().release();
  }();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  DJ_CHECK_MSG(!name.empty(), "metric name must be non-empty");
  MutexLock lock(mu_);
  DJ_CHECK_MSG(gauges_.find(name) == gauges_.end() &&
                   histograms_.find(name) == histograms_.end(),
               ("metric registered under another type: " + name).c_str());
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    // make_unique cannot reach the private ctor. dj_lint: allow(naked-new)
    std::unique_ptr<Counter> made(new Counter(name));
    it = counters_.emplace(name, std::move(made)).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  DJ_CHECK_MSG(!name.empty(), "metric name must be non-empty");
  MutexLock lock(mu_);
  DJ_CHECK_MSG(counters_.find(name) == counters_.end() &&
                   histograms_.find(name) == histograms_.end(),
               ("metric registered under another type: " + name).c_str());
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    // make_unique cannot reach the private ctor. dj_lint: allow(naked-new)
    std::unique_ptr<Gauge> made(new Gauge(name));
    it = gauges_.emplace(name, std::move(made)).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  DJ_CHECK_MSG(!name.empty(), "metric name must be non-empty");
  const std::vector<double>& use =
      bounds.empty() ? Histogram::DefaultLatencyBucketsMs() : bounds;
  MutexLock lock(mu_);
  DJ_CHECK_MSG(counters_.find(name) == counters_.end() &&
                   gauges_.find(name) == gauges_.end(),
               ("metric registered under another type: " + name).c_str());
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    // make_unique cannot reach the private ctor. dj_lint: allow(naked-new)
    std::unique_ptr<Histogram> made(new Histogram(name, use));
    it = histograms_.emplace(name, std::move(made)).first;
  } else {
    DJ_CHECK_MSG(it->second->bounds() == use,
                 ("histogram re-registered with different bounds: " + name)
                     .c_str());
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramSample s;
    s.name = name;
    s.bounds = h->bounds();
    s.buckets.resize(s.bounds.size() + 1);
    for (size_t i = 0; i < s.buckets.size(); ++i) {
      s.buckets[i] = h->bucket_count(i);
    }
    s.count = h->count();
    s.sum = h->sum();
    snap.histograms.push_back(std::move(s));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

// ---- Export ----------------------------------------------------------------

namespace {

/// Shortest-round-trip-ish double formatting shared by both exporters so
/// golden tests are stable: integers print bare, others via %.9g.
std::string FormatNumber(double v) {
  if (std::isfinite(v) && v == static_cast<double>(static_cast<i64>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<i64>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += (i ? ",\n    \"" : "\n    \"") + counters[i].name +
           "\": " + std::to_string(counters[i].value);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += (i ? ",\n    \"" : "\n    \"") + gauges[i].name +
           "\": " + FormatNumber(gauges[i].value);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSample& h = histograms[i];
    out += (i ? ",\n    \"" : "\n    \"") + h.name + "\": {";
    out += "\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + FormatNumber(h.sum);
    out += ", \"bounds\": [";
    for (size_t j = 0; j < h.bounds.size(); ++j) {
      out += (j ? ", " : "") + FormatNumber(h.bounds[j]);
    }
    out += "], \"buckets\": [";
    for (size_t j = 0; j < h.buckets.size(); ++j) {
      out += (j ? ", " : "") + std::to_string(h.buckets[j]);
    }
    out += "]}";
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const CounterSample& c : counters) {
    out += "# TYPE " + c.name + " counter\n";
    out += c.name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : gauges) {
    out += "# TYPE " + g.name + " gauge\n";
    out += g.name + " " + FormatNumber(g.value) + "\n";
  }
  for (const HistogramSample& h : histograms) {
    out += "# TYPE " + h.name + " histogram\n";
    u64 cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      out += h.name + "_bucket{le=\"" + FormatNumber(h.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    cumulative += h.buckets.back();
    out += h.name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
           "\n";
    out += h.name + "_sum " + FormatNumber(h.sum) + "\n";
    out += h.name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

}  // namespace metrics
}  // namespace deepjoin
