#include "util/crc32c.h"

#include <cstring>

namespace deepjoin {

namespace {

// Slicing-by-8: table[0] is the classic byte-at-a-time table; table[k]
// gives the CRC contribution of a byte that is k positions further from
// the end of the message, so eight bytes fold in per iteration with no
// loop-carried dependency on the input bytes.
struct Crc32cTables {
  u32 entries[8][256];
  Crc32cTables() {
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      }
      entries[0][i] = c;
    }
    for (int t = 1; t < 8; ++t) {
      for (u32 i = 0; i < 256; ++i) {
        entries[t][i] =
            entries[0][entries[t - 1][i] & 0xFF] ^ (entries[t - 1][i] >> 8);
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

u32 Crc32cExtend(u32 crc, const void* data, size_t n) {
  const u8* p = static_cast<const u8*>(data);
  const auto& t = Tables().entries;
  u32 c = crc ^ 0xFFFFFFFFu;

  // Byte-at-a-time until 8-byte alignment, then slicing-by-8.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    c = t[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
    --n;
  }
  while (n >= 8) {
    u32 lo;
    u32 hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
        t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = t[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
    --n;
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace deepjoin
