// Lock-discipline runtime (DESIGN.md §10): named, ranked mutexes with a
// thread-local held-locks stack, enforced acquisition order, and a
// process-wide lock-order graph.
//
// Every long-lived mutex in the tree is declared with a name and a rank
// from the table below:
//
//   Mutex mu_{"threadpool.queue", rank::kPool};
//
// The discipline is a single rule: a thread may only acquire a lock whose
// rank is STRICTLY GREATER than the rank of every lock it already holds.
// Acquisitions in nondecreasing rank order (including re-acquiring a held
// lock) abort with both lock names and acquisition sites. Because every
// observed acquired-while-holding edge then runs "uphill" in rank, the
// observed lock-order graph is acyclic by construction and the process can
// never deadlock on ranked locks.
//
// The checks compile in only under -DDJ_LOCK_RANK (CMake option
// DJ_LOCK_RANK, defaulted ON for Debug and sanitizer builds): a release
// build pays nothing — the hooks are never called and the named
// constructor collapses to the default one. The default `Mutex()`
// constructor stays available for portability and for short-lived
// test-local locks; unranked locks participate in the held stack (so
// CondVar::Wait checks still see them) but skip rank validation.
//
// The observed graph is dumped as JSON/DOT by tools/dj_lockgraph and
// surfaces in the MetricsRegistry snapshot (dj_lockrank_* gauges) once
// PublishMetrics() has run. tools/dj_deadlock is the static (lint-time)
// half of the same discipline: it derives the acquired-while-holding graph
// from the source instead of from execution, so orderings on paths no test
// ever runs still fail the build.
#ifndef DEEPJOIN_UTIL_LOCK_RANK_H_
#define DEEPJOIN_UTIL_LOCK_RANK_H_

#include <cstddef>
#include <memory>
#include <string>

namespace deepjoin {

// Rank table for every named mutex in the tree. Keep one `constexpr int`
// per line with the lock name in the trailing comment: tools/dj_deadlock
// parses this block to learn the rank of each symbol, and DESIGN.md §10
// documents how to pick a value for a new lock (midpoints between the
// neighbours it nests inside; leaves go high).
namespace rank {
inline constexpr int kServeQueue = 40;      // searcher.serve_queue
inline constexpr int kServeBatcher = 60;    // serve.batcher
inline constexpr int kServeCompletion = 80; // serve.completion
inline constexpr int kPool = 100;           // threadpool.queue
inline constexpr int kSearcherWriter = 150; // searcher.writer
inline constexpr int kWalCommit = 170;      // searcher.wal_commit
inline constexpr int kPoolBatch = 200;      // threadpool.batch
inline constexpr int kSnapshot = 250;       // searcher.snapshot
inline constexpr int kWorkspace = 300;      // transformer.workspace
inline constexpr int kHnswUpdate = 350;     // hnsw.update
inline constexpr int kVisited = 400;        // hnsw.visited_pool
inline constexpr int kHnswLinks = 450;      // hnsw.links
inline constexpr int kEnvFault = 500;       // env.fault_state
inline constexpr int kMetrics = 900;        // metrics.registry (leaf)
/// Rank of a default-constructed (unnamed) Mutex; skips rank validation.
inline constexpr int kUnranked = -1;
}  // namespace rank

namespace lock_rank {

/// True when the tree was compiled with -DDJ_LOCK_RANK (the hooks below
/// are live). Tests use this to skip the runtime-enforcement cases in
/// builds where the layer is compiled out.
bool Enabled();

// ---- Hooks called by util/mutex.h (only under DJ_LOCK_RANK) ----
// `mu` is an opaque identity pointer; `name` is the registered lock name
// (nullptr for unranked locks); `file:line` is the acquisition site.

/// Validates rank order against this thread's held stack (abort on
/// violation), records the acquired-while-holding edges into the global
/// LockOrderGraph, and pushes the lock. Called before the underlying
/// lock() so an inversion aborts with a report instead of deadlocking.
void OnAcquire(const void* mu, const char* name, int rank, const char* file,
               unsigned line);

/// Pops the lock from this thread's held stack (position-tolerant: locks
/// may be released out of acquisition order).
void OnRelease(const void* mu);

/// Like OnAcquire but for a successful TryLock: records the edge and
/// pushes, but does not enforce rank order — a try-acquire cannot block,
/// so it cannot deadlock (documented in util/mutex.h).
void OnTryAcquire(const void* mu, const char* name, int rank,
                  const char* file, unsigned line);

/// Called by CondVar::Wait before sleeping: verifies `mu` is held and is
/// the ONLY lock this thread holds, then pops it (the wait releases it).
/// Holding a second lock across a wait is a hard error — see the CondVar
/// contract in util/mutex.h for why.
void OnCondVarWait(const void* mu, const char* file, unsigned line);

/// Registers a named lock in the global graph at construction time, and
/// aborts if the same name was previously registered under a different
/// rank (two call sites disagreeing about a lock's rank is a config bug).
void RegisterLock(const char* name, int rank, const char* file,
                  unsigned line);

/// Number of locks the calling thread currently holds (test hook).
size_t HeldDepth();

// ---- Observed lock-order graph ----

/// Directed graph of lock names: an edge a->b means some thread acquired b
/// while holding a. Nodes are registered named locks. Thread-safe; the
/// global instance is fed by the OnAcquire hooks, and free-standing
/// instances back the unit tests. Insertion runs online cycle detection —
/// a cycle cannot arise from rank-validated acquisitions, but TryLock
/// edges skip validation, and the detector keeps the invariant honest.
class LockOrderGraph {
 public:
  LockOrderGraph();
  ~LockOrderGraph();
  LockOrderGraph(const LockOrderGraph&) = delete;
  LockOrderGraph& operator=(const LockOrderGraph&) = delete;

  /// The process-wide graph the mutex hooks feed.
  static LockOrderGraph& Global();

  /// Adds (or re-counts) a node; `site` is the declaration site.
  void RegisterNode(const std::string& name, int rank,
                    const std::string& site);

  /// Adds (or increments) edge from->to with first-observed acquisition
  /// sites. Returns true when the insertion closed a cycle; `*cycle` (if
  /// non-null) then receives "a -> b -> ... -> a".
  bool AddEdge(const std::string& from, const std::string& to,
               const std::string& from_site, const std::string& to_site,
               std::string* cycle = nullptr);

  size_t node_count() const;
  size_t edge_count() const;

  /// {"nodes":[{"name","rank","declared_at"}...],
  ///  "edges":[{"from","to","count","from_site","to_site"}...]},
  /// both sorted by name so dumps are stable.
  std::string ToJson() const;
  /// Graphviz digraph; node labels carry ranks, edge labels carry counts.
  std::string ToDot() const;

  /// Drops all nodes and edges (tests only).
  void Clear();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Copies the graph's node/edge counts and the total acquisition count
/// into the MetricsRegistry (dj_lockrank_nodes, dj_lockrank_edges,
/// dj_lockrank_acquires) so the PR 5 snapshot path exports them.
/// Called on demand (dj_stats, dj_lockgraph) rather than from the hooks:
/// the hooks run during mutex construction inside MetricsRegistry's own
/// initialisation, where touching the registry would recurse.
void PublishMetrics();

}  // namespace lock_rank
}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_LOCK_RANK_H_
