// Non-cryptographic hashing utilities: 64-bit string hashing (FNV-1a and a
// seeded xx-style mixer) and hash combining. MinHash and the subword
// embedder both depend on cheap, well-mixed, *seedable* hashes.
#ifndef DEEPJOIN_UTIL_HASH_H_
#define DEEPJOIN_UTIL_HASH_H_

#include <string_view>

#include "util/common.h"

namespace deepjoin {

/// FNV-1a over bytes. Stable across platforms; used for vocabulary ids.
inline u64 Fnv1a(std::string_view s) {
  u64 h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Final avalanche from MurmurHash3.
inline u64 Mix64(u64 h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

/// Seeded string hash: independent hash families indexed by `seed`.
/// MinHash uses one family per permutation.
inline u64 SeededHash(std::string_view s, u64 seed) {
  return Mix64(Fnv1a(s) ^ Mix64(seed ^ 0x9e3779b97f4a7c15ULL));
}

/// Seeded integer hash, same family structure as SeededHash.
inline u64 SeededHash(u64 x, u64 seed) {
  return Mix64(x ^ Mix64(seed ^ 0x9e3779b97f4a7c15ULL));
}

/// boost-style hash combine.
inline u64 HashCombine(u64 a, u64 b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_HASH_H_
