// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum guarding every record of the on-disk artifact format (see
// util/binary_io.h and DESIGN.md §7). Software table implementation;
// detects all single-bit and single-byte errors, which is what the
// bit-flip torture tests rely on.
#ifndef DEEPJOIN_UTIL_CRC32C_H_
#define DEEPJOIN_UTIL_CRC32C_H_

#include <cstddef>

#include "util/common.h"

namespace deepjoin {

/// Extends `crc` (a running checksum previously returned by Crc32c or
/// Crc32cExtend) with `n` more bytes.
u32 Crc32cExtend(u32 crc, const void* data, size_t n);

/// CRC32C of a single buffer. Crc32c("123456789", 9) == 0xE3069283.
inline u32 Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_CRC32C_H_
