#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "util/string_util.h"

namespace deepjoin {

bool Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
  return true;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

i64 Flags::GetInt(const std::string& name, i64 default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace deepjoin
