// Runtime-dispatched compute kernels — the single home for SIMD in this
// tree (enforced by dj_lint rule `simd-intrinsics`). Every hot float loop
// in the repo (GEMM for training/inference, L2 distances for ANN search,
// axpy/scale for autograd) routes through this API.
//
// Dispatch: one of two tiers is selected once, at first use, via cpuid:
//   kAvx2   — AVX2 + FMA vector paths (x86-64 with both features)
//   kScalar — portable scalar fallback (also forced by setting the
//             environment variable DJ_FORCE_SCALAR_KERNELS=1, for parity
//             testing and for reproducing results across machines)
// Tests may pin the tier in-process with ForceTierForTest().
//
// Determinism contract (DESIGN.md §8): every kernel has a FIXED, documented
// reduction order per tier. Two calls with the same inputs in the same tier
// return bit-identical results — regardless of pointer alignment, leading
// dimensions, blocking, or how callers partition rows across threads.
// Results may differ in low-order bits BETWEEN tiers (the AVX2 tier uses
// fused multiply-add and multi-lane reduction trees); anything that must be
// reproducible across machines should pin the scalar tier.
//
// Reduction orders:
//  * Dot / SquaredL2, scalar tier: one sequential accumulator over i
//    ascending, unfused (`acc = acc + a[i]*b[i]` — two roundings).
//  * Dot / SquaredL2, AVX2 tier: two 8-lane FMA accumulators acc0/acc1 fed
//    by interleaved 16-element blocks (acc0 takes lanes [16t, 16t+8),
//    acc1 takes [16t+8, 16t+16)); one optional extra 8-element block into
//    acc0; lanewise acc = acc0 + acc1; horizontal sum in the fixed order
//    ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)); then the <8 tail folded in
//    sequentially with std::fma.
//  * Sgemm{NN,NT,TN}, both tiers: each C(i,j) is a single chain over k —
//    seeded at 0 per KC-sized k-block (KC = 256), k ascending within the
//    block (AVX2: one FMA per step; scalar: unfused multiply-add), block
//    sums added into C in ascending block order. The chain never depends
//    on the variant, tile position, or m/n partitioning, which is what
//    makes row-parallel GEMM bit-identical to serial.
//  * Axpy (y += a*x) and ScaleAdd (y = a*x + b*y): elementwise; AVX2 uses
//    fma(a, x, y) resp. fma(b, y, a*x), scalar keeps separate roundings.
//    With a == 1, Axpy is an exact add in both tiers (1*x is exact), so
//    pure additions stay bit-identical across tiers. ScaleAdd with b == 0
//    writes a*x without reading y (safe on uninitialised y).
//  * SquaredL2Sq8 (asymmetric: float query vs SQ8 codes), scalar tier: one
//    sequential accumulator over i ascending; per element the decode is
//    unfused (t = scale[i]*codes[i]; v = lo[i]+t — two roundings), then
//    d = q[i]-v and acc = acc + d*d (unfused).
//  * SquaredL2Sq8, AVX2 tier: same two-accumulator interleaved-16 shape as
//    SquaredL2 (acc0 takes lanes [16t, 16t+8), acc1 [16t+8, 16t+16); one
//    optional extra 8-block into acc0). Per 8-lane block the codes are
//    widened u8 -> i32 -> float (exact for values <= 255), decoded with a
//    single FMA v = fma(scale, code, lo), then d = q - v and
//    acc = fma(d, d, acc). Horizontal sum in the same fixed order
//    ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)); the <8 tail folds in
//    sequentially with std::fma for both the decode and the accumulate.
//
// Alignment: kernels never REQUIRE alignment (all loads/stores are
// unaligned ops); nn::Matrix guarantees 64-byte-aligned storage so the
// common case runs on aligned addresses anyway.
#ifndef DEEPJOIN_UTIL_KERNELS_H_
#define DEEPJOIN_UTIL_KERNELS_H_

#include <cstddef>
#include <new>

#include "util/alloc_guard.h"
#include "util/common.h"

namespace deepjoin {
namespace kern {

enum class Tier { kScalar, kAvx2 };

/// The tier every kernel call dispatches on: the forced-for-test tier if
/// set, else the detected one. Detection runs once (cpuid + the
/// DJ_FORCE_SCALAR_KERNELS environment variable) and is then cached.
Tier ActiveTier();

/// What the hardware (plus DJ_FORCE_SCALAR_KERNELS) supports, ignoring any
/// ForceTierForTest override.
Tier DetectedTier();

const char* TierName(Tier tier);

/// Test hook: pin the dispatch tier in-process. Forcing kAvx2 on hardware
/// without AVX2+FMA is a checked error. Not thread-safe against concurrent
/// kernel calls — flip tiers only between test phases.
void ForceTierForTest(Tier tier);
void ClearForcedTierForTest();

// Every kernel below is DJ_NOALLOC: pure loops over caller-owned buffers
// (the contract tools/dj_alloc verifies across both dispatch tiers).

/// sum_i a[i]*b[i]
DJ_NOALLOC float Dot(const float* a, const float* b, int n);

/// sum_i (a[i]-b[i])^2
DJ_NOALLOC float SquaredL2(const float* a, const float* b, int n);

/// Fused asymmetric SQ8 distance: sum_i (q[i] - (lo[i] + scale[i] *
/// codes[i]))^2. The quantized row is decoded lane-by-lane inside the
/// accumulation loop (never materialised), which is what lets quantized
/// search run without a per-row decompress buffer.
DJ_NOALLOC float SquaredL2Sq8(const float* q, const u8* codes,
                              const float* lo, const float* scale, int n);

/// y[i] += alpha * x[i]
DJ_NOALLOC void Axpy(int n, float alpha, const float* x, float* y);

/// y[i] = alpha * x[i] + beta * y[i]; beta == 0 never reads y (so y may be
/// uninitialised), and x == y aliasing is allowed.
DJ_NOALLOC void ScaleAdd(int n, float alpha, const float* x, float beta,
                         float* y);

// Blocked, packed single-precision GEMM, accumulating: C += op(A) @ op(B).
// All matrices are row-major with explicit leading dimensions (so callers
// can run on sub-views, e.g. per-head column slices, without copies).
//   NN: A is [m,k] (lda >= k), B is [k,n] (ldb >= n)
//   NT: A is [m,k] (lda >= k), B is [n,k] (ldb >= k)  — C += A @ B^T
//   TN: A is [k,m] (lda >= m), B is [k,n] (ldb >= n)  — C += A^T @ B
// C is [m,n] (ldc >= n) and must not alias A or B.
// DJ_NOALLOC steady state: the thread-local pack/accumulator scratch
// grows to the largest (n, k) seen and then reuses capacity.
DJ_NOALLOC void SgemmNN(int m, int n, int k, const float* a, int lda,
                        const float* b, int ldb, float* c, int ldc);
DJ_NOALLOC void SgemmNT(int m, int n, int k, const float* a, int lda,
                        const float* b, int ldb, float* c, int ldc);
DJ_NOALLOC void SgemmTN(int m, int n, int k, const float* a, int lda,
                        const float* b, int ldb, float* c, int ldc);

/// Minimal aligned allocator so nn::Matrix (and kernel tests) can keep
/// rows on cache-line boundaries. Value-initialises like std::allocator.
template <typename T, size_t Alignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two >= alignof(T)");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}  // NOLINT

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    // Placement-form operator new is the ownership-explicit aligned
    // allocation primitive; deallocate() below is its paired release.
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

}  // namespace kern
}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_KERNELS_H_
