// Process-wide observability metrics (DESIGN.md §9): named counters,
// gauges, and fixed-bucket histograms with lock-free atomic updates on hot
// paths. The registry itself (name -> metric) is the only locked structure
// and is touched once per call site: hot code caches the returned pointer
// in a function-local static.
//
//   static metrics::Counter* const evals =
//       metrics::MetricsRegistry::Global().GetCounter("dj_hnsw_dist_evals_total");
//   evals->Add(n);
//
// Naming scheme: dj_<layer>_<name>, lower_snake_case. Counters end in
// `_total`, latency histograms in `_ms`. Snapshot() produces a consistent
// enough view for export (each sample is an atomic read; cross-metric skew
// is acceptable) and serialises to JSON or Prometheus text exposition
// format — `tools/dj_stats` is the reference dumper.
//
// Kill switch: setting the environment variable DJ_METRICS=off (or 0 /
// false) before process start disables every Add/Set/Record at a single
// relaxed atomic-bool test, so instrumented hot paths run at their
// uninstrumented speed (BENCH_micro.json tracks the delta).
#ifndef DEEPJOIN_UTIL_METRICS_H_
#define DEEPJOIN_UTIL_METRICS_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/alloc_guard.h"
#include "util/common.h"
#include "util/mutex.h"

namespace deepjoin {
namespace metrics {

namespace internal {
/// Process-wide enable flag; initialised from DJ_METRICS at static-init
/// time, flippable by tests/benchmarks. Relaxed: the flag gates best-effort
/// telemetry, never correctness.
extern std::atomic<bool> g_enabled;
}  // namespace internal

inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
/// Test/bench hook for the DJ_METRICS kill switch; returns the old value.
bool SetEnabledForTest(bool enabled);

/// Monotonic event count. Relaxed 64-bit adds; wraps modulo 2^64 like every
/// Prometheus counter (scrapers handle resets, tests pin the wrap).
class Counter {
 public:
  DJ_NOALLOC void Increment() { Add(1); }
  DJ_NOALLOC void Add(u64 n) {
    if (Enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  u64 value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  const std::string name_;
  std::atomic<u64> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, current loss).
class Gauge {
 public:
  DJ_NOALLOC void Set(double v) {
    if (Enabled()) value_.store(v, std::memory_order_relaxed);
  }
  DJ_NOALLOC void Add(double d) {
    if (!Enabled()) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  const std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary histogram (Prometheus semantics: bucket i counts samples
/// <= bounds[i], plus one overflow bucket). Bounds are immutable after
/// registration, so Record is pure atomics — no lock, safe from any thread.
class Histogram {
 public:
  /// Default latency buckets (milliseconds), 1µs .. 2.5s exponential-ish.
  static const std::vector<double>& DefaultLatencyBucketsMs();

  DJ_NOALLOC void Record(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative count of samples <= bounds[i] would be the Prometheus view;
  /// bucket_count returns the *per-bucket* (non-cumulative) count.
  /// i == bounds().size() is the overflow bucket.
  u64 bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  u64 count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds);

  const std::string name_;
  const std::vector<double> bounds_;  // ascending upper bounds
  std::unique_ptr<std::atomic<u64>[]> buckets_;  // bounds_.size() + 1
  std::atomic<u64> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every registered metric, ready for export. Taken
/// while writers keep incrementing: each sample is one atomic read, so a
/// snapshot never tears a value (it may interleave across metrics).
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    u64 value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    std::vector<double> bounds;
    std::vector<u64> buckets;  ///< per-bucket counts; last = overflow
    u64 count = 0;
    double sum = 0.0;
  };

  std::vector<CounterSample> counters;      // sorted by name
  std::vector<GaugeSample> gauges;          // sorted by name
  std::vector<HistogramSample> histograms;  // sorted by name

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}
  std::string ToJson() const;
  /// Prometheus text exposition format (# TYPE lines, cumulative
  /// `le`-labelled buckets, _sum/_count).
  std::string ToPrometheusText() const;
};

/// Name -> metric registry. Get* registers on first use and returns the
/// same stable pointer forever after; metrics are never unregistered, so a
/// cached pointer cannot dangle. Registering a name under two different
/// metric types (or a histogram under two bucket layouts) is a programming
/// error and aborts.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every DJ_TRACE_SPAN / built-in metric uses.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name) DJ_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) DJ_EXCLUDES(mu_);
  /// Empty `bounds` selects Histogram::DefaultLatencyBucketsMs().
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds = {})
      DJ_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const DJ_EXCLUDES(mu_);

 private:
  // Highest rank in the table: Get* registration legitimately runs under
  // any other subsystem's lock (function-local-static pointer caching), so
  // the registry lock must be acquirable while holding anything.
  mutable Mutex mu_{"metrics.registry", rank::kMetrics};
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_
      DJ_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_
      DJ_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_
      DJ_GUARDED_BY(mu_);
};

}  // namespace metrics
}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_METRICS_H_
