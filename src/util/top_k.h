// Bounded top-k accumulator. Keeps the k items with the *largest* score
// (or smallest, via ScoredMin) using a size-k heap; O(log k) per push.
// Every search path in the library (JOSIE, LSH Ensemble, PEXESO, ANN
// indexes, exact joinability scans) funnels through this type so that
// tie-breaking is consistent everywhere: higher score first, then lower id.
#ifndef DEEPJOIN_UTIL_TOP_K_H_
#define DEEPJOIN_UTIL_TOP_K_H_

#include <algorithm>
#include <queue>
#include <vector>

#include "util/common.h"

namespace deepjoin {

/// A (score, id) pair. For distance-flavoured users, negate the distance or
/// use TopK<...>::WorstScore() accessors to implement pruning bounds.
struct Scored {
  double score;
  u32 id;

  /// Ordering for a *max* result list: greater score wins; ties broken by
  /// smaller id so results are deterministic across methods.
  friend bool operator<(const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.id > b.id;
  }
  friend bool operator==(const Scored& a, const Scored& b) {
    return a.score == b.score && a.id == b.id;
  }
};

/// Keeps the k largest Scored entries.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) { DJ_CHECK(k > 0); }

  /// Offers an item; returns true if it entered the current top-k.
  bool Push(double score, u32 id) {
    Scored s{score, id};
    if (heap_.size() < k_) {
      heap_.push(s);
      return true;
    }
    if (heap_.top() < s) {
      heap_.pop();
      heap_.push(s);
      return true;
    }
    return false;
  }

  bool Full() const { return heap_.size() >= k_; }
  size_t Size() const { return heap_.size(); }
  size_t k() const { return k_; }

  /// Score of the current k-th item (the pruning bound). Only valid when
  /// Full(); callers typically guard with Full() before pruning.
  double WorstScore() const {
    DJ_CHECK(!heap_.empty());
    return heap_.top().score;
  }

  /// Extracts results sorted best-first. The accumulator is left empty.
  std::vector<Scored> Take() {
    std::vector<Scored> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.push_back(heap_.top());
      heap_.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

 private:
  // std::priority_queue is a max-heap; with Scored's operator< the *top* is
  // the smallest element, which is exactly the eviction candidate.
  struct MinFirst {
    bool operator()(const Scored& a, const Scored& b) const { return b < a; }
  };
  size_t k_;
  std::priority_queue<Scored, std::vector<Scored>, MinFirst> heap_;
};

}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_TOP_K_H_
