// Scoped trace spans (DESIGN.md §9). A span is a named, timed region:
//
//   void HnswIndex::Search(...) {
//     DJ_TRACE_SPAN("hnsw.search");
//     ...
//   }
//
// Every span always feeds a process-wide latency histogram (derived name:
// "hnsw.search" -> "dj_hnsw_search_ms", registered once per call site and
// cached in a function-local static). When a TraceCollector is installed on
// the current thread — the searcher does this when
// SearchOptions::collect_stats is set — the same spans additionally build a
// per-query tree of nested timings plus per-query counter deltas, returned
// to the caller as QueryStats.
//
// Cost model: with metrics enabled and no collector, a span is two
// steady_clock reads and one histogram Record (pure relaxed atomics). With
// the DJ_METRICS=off kill switch and no collector, a span reads one relaxed
// atomic bool and touches no clock at all.
#ifndef DEEPJOIN_UTIL_TRACE_H_
#define DEEPJOIN_UTIL_TRACE_H_

#include <chrono>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/metrics.h"

namespace deepjoin {
namespace trace {

/// One timed region in a per-query breakdown. Children are spans that
/// opened (and closed) while this one was open, in open order.
struct SpanNode {
  std::string name;
  double elapsed_ms = 0.0;
  std::vector<SpanNode> children;

  /// Depth-first search for a span by name (this node included); nullptr if
  /// absent. With duplicate names the first in open order wins.
  const SpanNode* Find(const std::string& span_name) const;
};

/// Per-query increment of a named counter (e.g. distance evaluations for
/// this one search, as opposed to the process-lifetime metrics::Counter).
struct CounterDelta {
  std::string name;
  u64 value = 0;
};

/// The per-query breakdown carried by SearchResult: a span tree rooted at
/// the outermost span plus the counter deltas recorded under it.
struct QueryStats {
  SpanNode root;
  std::vector<CounterDelta> counters;  // sorted by name

  /// Wall time of the outermost span.
  double total_ms() const { return root.elapsed_ms; }
  /// Elapsed ms of the named span anywhere in the tree; 0 if it never ran.
  double SpanMs(const std::string& span_name) const;
  /// Per-query value of the named counter; 0 if never incremented.
  u64 CounterValue(const std::string& counter_name) const;

  /// Human-readable indented tree + counters, for CLI breakdowns.
  std::string ToString() const;
};

/// Builds a QueryStats from the spans/counts that fire on this thread while
/// the collector is installed. Install is scoped and re-entrant: the
/// constructor saves the thread's previous collector and the destructor
/// restores it, so a searcher nested inside another traced component grafts
/// cleanly instead of clobbering.
///
/// Not thread-safe; a collector observes exactly one thread. Parallel
/// workers each install their own.
class TraceCollector {
 public:
  /// enabled=false constructs an inert collector (nothing installed,
  /// Finish() returns an empty QueryStats) so call sites can write
  /// `TraceCollector tc(options.collect_stats);` without branching.
  explicit TraceCollector(bool enabled);
  ~TraceCollector();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  bool enabled() const { return enabled_; }

  /// The collector installed on this thread, or nullptr.
  static TraceCollector* Current();

  /// Called by ScopedSpan; public only for that and for tests.
  void OpenSpan(const char* name);
  void CloseSpan(double elapsed_ms);
  /// Aggregates by name (linear scan — a query touches a handful of names).
  void AddCount(const char* name, u64 delta);

  /// Consumes the collected spans. If exactly one top-level span was
  /// recorded (the common case: the caller wrapped its whole body in one
  /// DJ_TRACE_SPAN) it becomes the root; otherwise a synthetic "query" root
  /// whose elapsed is the sum of its children wraps them. Counters come out
  /// sorted by name. The collector is empty afterwards.
  QueryStats Finish();

 private:
  const bool enabled_;
  TraceCollector* prev_ = nullptr;  // restored on destruction
  std::vector<SpanNode> stack_;     // open spans, outermost first
  std::vector<SpanNode> roots_;     // closed top-level spans
  std::vector<CounterDelta> counts_;
};

/// Derived histogram name for a span: "hnsw.search" -> "dj_hnsw_search_ms".
std::string SpanHistogramName(const char* span_name);

/// Records a per-query counter delta if a collector is installed on this
/// thread; no-op (one thread-local read) otherwise. This is the per-query
/// companion to metrics::Counter::Add — hot paths typically do both.
inline void Count(const char* name, u64 delta) {
  // AddCount grows per-query state, but only runs with a collector
  // installed — the DJ_NOALLOC steady state is collector-off, where this
  // is one thread-local read.
  // dj_alloc: allow(alloc)
  if (TraceCollector* c = TraceCollector::Current()) c->AddCount(name, delta);
}

/// RAII timed region. Prefer the DJ_TRACE_SPAN macro, which also registers
/// and caches the backing histogram.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, metrics::Histogram* histogram)
      : histogram_(histogram), collector_(TraceCollector::Current()) {
    if (metrics::Enabled() || collector_ != nullptr) {
      start_ = Clock::now();
      active_ = true;
      if (collector_ != nullptr) collector_->OpenSpan(name);
    }
  }

  ~ScopedSpan() {
    if (!active_) return;
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start_)
            .count();
    if (histogram_ != nullptr && metrics::Enabled()) {
      histogram_->Record(elapsed_ms);
    }
    if (collector_ != nullptr) collector_->CloseSpan(elapsed_ms);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  using Clock = std::chrono::steady_clock;
  metrics::Histogram* const histogram_;
  TraceCollector* const collector_;
  Clock::time_point start_{};
  bool active_ = false;
};

}  // namespace trace
}  // namespace deepjoin

#define DJ_TRACE_CONCAT_INNER_(a, b) a##b
#define DJ_TRACE_CONCAT_(a, b) DJ_TRACE_CONCAT_INNER_(a, b)

#define DJ_TRACE_SPAN_IMPL_(span_name, id)                                 \
  static ::deepjoin::metrics::Histogram* const DJ_TRACE_CONCAT_(           \
      dj_span_histogram_, id) =                                            \
      ::deepjoin::metrics::MetricsRegistry::Global().GetHistogram(         \
          ::deepjoin::trace::SpanHistogramName(span_name));                \
  ::deepjoin::trace::ScopedSpan DJ_TRACE_CONCAT_(dj_span_, id)(            \
      (span_name), DJ_TRACE_CONCAT_(dj_span_histogram_, id))

/// Times the enclosing scope as span `span_name` (a string literal like
/// "hnsw.search"), feeding the dj_<...>_ms histogram and, when a
/// TraceCollector is installed, the per-query QueryStats tree.
#define DJ_TRACE_SPAN(span_name) DJ_TRACE_SPAN_IMPL_(span_name, __COUNTER__)

#endif  // DEEPJOIN_UTIL_TRACE_H_
