// Minimal command-line flag parsing for the bench binaries and examples.
// Supports --name=value and --name value; unknown flags are reported.
#ifndef DEEPJOIN_UTIL_FLAGS_H_
#define DEEPJOIN_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/common.h"

namespace deepjoin {

class Flags {
 public:
  /// Parses argv. Returns false (and prints to stderr) on malformed input.
  bool Parse(int argc, char** argv);

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  i64 GetInt(const std::string& name, i64 default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_FLAGS_H_
