// Concurrency-contract layer: mutex/condvar wrappers carrying Clang
// thread-safety capability attributes, so lock discipline is checked at
// compile time instead of hoped-for at runtime (DESIGN.md §6), plus the
// runtime half of the lock-rank discipline (DESIGN.md §10).
//
// Under Clang, `-DDJ_THREAD_SAFETY=ON` turns `-Wthread-safety` violations
// into build errors; under GCC every annotation macro expands to nothing,
// so the tree stays portable. tools/check.sh runs the Clang leg when a
// clang++ is available, and a negative-compile test
// (tests/tools/thread_safety_negative) proves the annotations are live.
//
// Lock ranking (util/lock_rank.h): long-lived mutexes are declared with a
// name and a rank from deepjoin::rank —
//
//   Mutex mu_{"threadpool.queue", rank::kPool};
//
// Under -DDJ_LOCK_RANK (on in Debug/sanitizer builds, compiled out
// otherwise) every Lock/Unlock/Wait maintains a thread-local held-locks
// stack: acquiring a lock whose rank is not strictly greater than every
// held rank aborts with both lock names and acquisition sites, and each
// observed acquired-while-holding edge lands in the process-wide
// LockOrderGraph (dumped by tools/dj_lockgraph). The static companion,
// tools/dj_deadlock, derives the same graph from source at lint time.
//
// Conventions (enforced by dj_lint rule `raw-mutex`: no std::mutex /
// std::lock_guard / std::condition_variable outside this header):
//  - Every shared mutable field is declared with DJ_GUARDED_BY(mu_).
//  - Every long-lived mutex carries a name and a rank; the default ctor is
//    for portability shims and short-lived test-local locks only
//    (tools/dj_deadlock flags unranked mutexes under src/).
//  - Private helpers that assume the lock is already held are named
//    `*Locked()` and annotated DJ_REQUIRES(mu_).
//  - Prefer scoped MutexLock over manual Lock/Unlock pairs.
//  - CondVar waits are written as explicit `while (!cond) cv.Wait(mu);`
//    loops: the analysis sees the guarded reads under the scoped lock,
//    whereas a predicate lambda would be analyzed out of context.
#ifndef DEEPJOIN_UTIL_MUTEX_H_
#define DEEPJOIN_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(DJ_LOCK_RANK)
#include <source_location>
#endif

#include "util/lock_rank.h"

// Thread-safety annotations are a Clang extension; GCC (and any compiler
// without the attribute) compiles them away.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DJ_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#endif
#endif
#ifndef DJ_THREAD_ANNOTATION_ATTRIBUTE__
#define DJ_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside Clang
#endif

#define DJ_CAPABILITY(x) DJ_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))
#define DJ_SCOPED_CAPABILITY DJ_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Field annotation: reads/writes require holding the named mutex.
#define DJ_GUARDED_BY(x) DJ_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))
/// Pointer-field annotation: the pointee (not the pointer) is guarded.
#define DJ_PT_GUARDED_BY(x) DJ_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Function annotation: caller must hold the named mutex(es). Use on
/// `*Locked()` helpers.
#define DJ_REQUIRES(...) \
  DJ_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
/// Function annotation: caller must NOT hold the named mutex(es); guards
/// against self-deadlock on non-reentrant locks.
#define DJ_EXCLUDES(...) \
  DJ_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define DJ_ACQUIRE(...) \
  DJ_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define DJ_RELEASE(...) \
  DJ_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define DJ_TRY_ACQUIRE(...) \
  DJ_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Escape hatch for code the analysis cannot follow (e.g. init/teardown
/// where exclusivity is structural). Use sparingly and leave a comment.
#define DJ_NO_THREAD_SAFETY_ANALYSIS \
  DJ_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace deepjoin {

class CondVar;

/// Annotated wrapper over std::mutex. Non-movable (like std::mutex):
/// classes that must stay movable hold it behind a unique_ptr, as
/// HnswIndex does with its VisitedPool.
///
/// The two-argument constructor names and ranks the lock for the lock-rank
/// discipline; under DJ_LOCK_RANK the name/rank are stored and enforced,
/// otherwise the constructor is an empty shim so call sites compile
/// identically in both modes at zero cost.
class DJ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#if defined(DJ_LOCK_RANK)
  Mutex(const char* name, int rank,
        std::source_location loc = std::source_location::current())
      : name_(name), rank_(rank) {
    lock_rank::RegisterLock(name, rank, loc.file_name(), loc.line());
  }

  void Lock(std::source_location loc = std::source_location::current())
      DJ_ACQUIRE() {
    // Validate before blocking: an inversion aborts with a report instead
    // of deadlocking inside mu_.lock().
    lock_rank::OnAcquire(this, name_, rank_, loc.file_name(), loc.line());
    mu_.lock();
  }

  void Unlock() DJ_RELEASE() {
    lock_rank::OnRelease(this);
    mu_.unlock();
  }

  /// Rank order is NOT enforced for TryLock: a try-acquire cannot block,
  /// so it cannot deadlock. The successful acquisition still lands on the
  /// held stack and in the lock-order graph (where the online cycle check
  /// covers what rank validation skipped).
  bool TryLock(std::source_location loc = std::source_location::current())
      DJ_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_rank::OnTryAcquire(this, name_, rank_, loc.file_name(), loc.line());
    return true;
  }
#else
  Mutex(const char* /*name*/, int /*rank*/) {}

  void Lock() DJ_ACQUIRE() { mu_.lock(); }
  void Unlock() DJ_RELEASE() { mu_.unlock(); }
  bool TryLock() DJ_TRY_ACQUIRE(true) { return mu_.try_lock(); }
#endif

 private:
  friend class CondVar;  // Wait() releases/reacquires during the sleep
  std::mutex mu_;
#if defined(DJ_LOCK_RANK)
  const char* name_ = nullptr;  // nullptr = unranked (default ctor)
  int rank_ = rank::kUnranked;
#endif
};

/// Scoped lock (RAII): acquires in the constructor, releases in the
/// destructor. The scoped_lockable annotation lets the analysis treat the
/// lock as held for exactly the block that contains the MutexLock.
class DJ_SCOPED_CAPABILITY MutexLock {
 public:
#if defined(DJ_LOCK_RANK)
  explicit MutexLock(Mutex& mu,
                     std::source_location loc = std::source_location::current())
      DJ_ACQUIRE(mu)
      : mu_(mu) {
    mu_.Lock(loc);
  }
#else
  explicit MutexLock(Mutex& mu) DJ_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
#endif
  ~MutexLock() DJ_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to dj Mutex. Wait() requires the mutex held on
/// entry and guarantees it held again on return; write the condition as an
/// explicit loop so guarded reads stay inside the analyzed lock scope:
///
///   MutexLock lock(mu_);
///   while (!ReadyLocked()) cv_.Wait(mu_);
///
/// Waiting while holding a SECOND lock is a hard error under DJ_LOCK_RANK:
/// Wait() releases only `mu`, so any other lock stays held across an
/// unbounded sleep — the thread that is supposed to Notify may first need
/// that very lock, which is the canonical condvar deadlock, and no rank
/// order can excuse it (the sleeping thread holds the lock without
/// progressing). Before this check, such a wait would silently pass and
/// only hang under the right interleaving; now it aborts deterministically
/// with both lock names. On wakeup the re-acquisition of `mu` re-enters
/// rank validation like any fresh acquisition, so a wakeup path that
/// somehow holds a higher-ranked lock is reported too.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

#if defined(DJ_LOCK_RANK)
  /// Atomically releases `mu`, sleeps until notified, reacquires `mu`.
  /// Spurious wakeups happen; always re-check the condition in a loop.
  void Wait(Mutex& mu,
            std::source_location loc = std::source_location::current())
      DJ_REQUIRES(mu) {
    // Pop `mu` (aborting if other locks are held — see the class comment),
    // sleep, then re-validate + re-push: the wakeup re-acquisition must
    // obey rank order exactly like a fresh Lock().
    lock_rank::OnCondVarWait(&mu, loc.file_name(), loc.line());
    cv_.wait(mu.mu_);
    lock_rank::OnAcquire(&mu, mu.name_, mu.rank_, loc.file_name(),
                         loc.line());
  }

  /// Like Wait but gives up after `timeout`. Returns false on timeout,
  /// true when notified (or spuriously woken) before it. Either way `mu`
  /// is reacquired before returning. The serving layer's blocking waits
  /// are all time-bounded through this overload (see dj_lint rule
  /// `untimed-wait-in-serve`).
  bool WaitFor(Mutex& mu, std::chrono::nanoseconds timeout,
               std::source_location loc = std::source_location::current())
      DJ_REQUIRES(mu) {
    lock_rank::OnCondVarWait(&mu, loc.file_name(), loc.line());
    const bool notified =
        cv_.wait_for(mu.mu_, timeout) == std::cv_status::no_timeout;
    lock_rank::OnAcquire(&mu, mu.name_, mu.rank_, loc.file_name(),
                         loc.line());
    return notified;
  }
#else
  /// Atomically releases `mu`, sleeps until notified, reacquires `mu`.
  /// Spurious wakeups happen; always re-check the condition in a loop.
  void Wait(Mutex& mu) DJ_REQUIRES(mu) { cv_.wait(mu.mu_); }

  /// Like Wait but gives up after `timeout`; false on timeout.
  bool WaitFor(Mutex& mu, std::chrono::nanoseconds timeout) DJ_REQUIRES(mu) {
    return cv_.wait_for(mu.mu_, timeout) == std::cv_status::no_timeout;
  }
#endif

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // _any variant: it takes any BasicLockable, letting us wait directly on
  // the wrapped std::mutex without exposing it to callers.
  std::condition_variable_any cv_;
};

}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_MUTEX_H_
