// Concurrency-contract layer: mutex/condvar wrappers carrying Clang
// thread-safety capability attributes, so lock discipline is checked at
// compile time instead of hoped-for at runtime (DESIGN.md §6).
//
// Under Clang, `-DDJ_THREAD_SAFETY=ON` turns `-Wthread-safety` violations
// into build errors; under GCC every annotation macro expands to nothing,
// so the tree stays portable. tools/check.sh runs the Clang leg when a
// clang++ is available, and a negative-compile test
// (tests/tools/thread_safety_negative) proves the annotations are live.
//
// Conventions (enforced by dj_lint rule `raw-mutex`: no std::mutex /
// std::lock_guard / std::condition_variable outside this header):
//  - Every shared mutable field is declared with DJ_GUARDED_BY(mu_).
//  - Private helpers that assume the lock is already held are named
//    `*Locked()` and annotated DJ_REQUIRES(mu_).
//  - Prefer scoped MutexLock over manual Lock/Unlock pairs.
//  - CondVar waits are written as explicit `while (!cond) cv.Wait(mu);`
//    loops: the analysis sees the guarded reads under the scoped lock,
//    whereas a predicate lambda would be analyzed out of context.
#ifndef DEEPJOIN_UTIL_MUTEX_H_
#define DEEPJOIN_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

// Thread-safety annotations are a Clang extension; GCC (and any compiler
// without the attribute) compiles them away.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DJ_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#endif
#endif
#ifndef DJ_THREAD_ANNOTATION_ATTRIBUTE__
#define DJ_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside Clang
#endif

#define DJ_CAPABILITY(x) DJ_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))
#define DJ_SCOPED_CAPABILITY DJ_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Field annotation: reads/writes require holding the named mutex.
#define DJ_GUARDED_BY(x) DJ_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))
/// Pointer-field annotation: the pointee (not the pointer) is guarded.
#define DJ_PT_GUARDED_BY(x) DJ_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Function annotation: caller must hold the named mutex(es). Use on
/// `*Locked()` helpers.
#define DJ_REQUIRES(...) \
  DJ_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
/// Function annotation: caller must NOT hold the named mutex(es); guards
/// against self-deadlock on non-reentrant locks.
#define DJ_EXCLUDES(...) \
  DJ_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define DJ_ACQUIRE(...) \
  DJ_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define DJ_RELEASE(...) \
  DJ_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define DJ_TRY_ACQUIRE(...) \
  DJ_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Escape hatch for code the analysis cannot follow (e.g. init/teardown
/// where exclusivity is structural). Use sparingly and leave a comment.
#define DJ_NO_THREAD_SAFETY_ANALYSIS \
  DJ_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace deepjoin {

class CondVar;

/// Annotated wrapper over std::mutex. Non-movable (like std::mutex):
/// classes that must stay movable hold it behind a unique_ptr, as
/// HnswIndex does with its VisitedPool.
class DJ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DJ_ACQUIRE() { mu_.lock(); }
  void Unlock() DJ_RELEASE() { mu_.unlock(); }
  bool TryLock() DJ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // Wait() releases/reacquires during the sleep
  std::mutex mu_;
};

/// Scoped lock (RAII): acquires in the constructor, releases in the
/// destructor. The scoped_lockable annotation lets the analysis treat the
/// lock as held for exactly the block that contains the MutexLock.
class DJ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DJ_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() DJ_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to dj Mutex. Wait() requires the mutex held on
/// entry and guarantees it held again on return; write the condition as an
/// explicit loop so guarded reads stay inside the analyzed lock scope:
///
///   MutexLock lock(mu_);
///   while (!ReadyLocked()) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, sleeps until notified, reacquires `mu`.
  /// Spurious wakeups happen; always re-check the condition in a loop.
  void Wait(Mutex& mu) DJ_REQUIRES(mu) { cv_.wait(mu.mu_); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // _any variant: it takes any BasicLockable, letting us wait directly on
  // the wrapped std::mutex without exposing it to callers.
  std::condition_variable_any cv_;
};

}  // namespace deepjoin

#endif  // DEEPJOIN_UTIL_MUTEX_H_
