# Driver for the thread-safety negative-compile test (see
# tests/tools/thread_safety_negative/CMakeLists.txt). Re-configures the
# mini project from scratch every run — try_compile results are cached in
# the mini project's CMakeCache, and a stale cache would turn the test into
# a no-op.
#
# Invoke:
#   cmake -DDJ_MINI_PROJECT=<dir> -DDJ_SCRATCH=<dir> -DDJ_CXX=<clang++>
#         -DDJ_SRC_ROOT=<root> -P cmake/run_thread_safety_negative.cmake
foreach(var DJ_MINI_PROJECT DJ_SCRATCH DJ_CXX DJ_SRC_ROOT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${DJ_SCRATCH}")

execute_process(
  COMMAND ${CMAKE_COMMAND}
    -S ${DJ_MINI_PROJECT}
    -B ${DJ_SCRATCH}
    -DCMAKE_CXX_COMPILER=${DJ_CXX}
    -DDJ_SRC_ROOT=${DJ_SRC_ROOT}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "thread-safety negative-compile check failed")
endif()
