file(REMOVE_RECURSE
  "CMakeFiles/dj_util.dir/flags.cc.o"
  "CMakeFiles/dj_util.dir/flags.cc.o.d"
  "CMakeFiles/dj_util.dir/string_util.cc.o"
  "CMakeFiles/dj_util.dir/string_util.cc.o.d"
  "CMakeFiles/dj_util.dir/table_printer.cc.o"
  "CMakeFiles/dj_util.dir/table_printer.cc.o.d"
  "CMakeFiles/dj_util.dir/thread_pool.cc.o"
  "CMakeFiles/dj_util.dir/thread_pool.cc.o.d"
  "libdj_util.a"
  "libdj_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dj_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
