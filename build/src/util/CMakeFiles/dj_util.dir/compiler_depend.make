# Empty compiler generated dependencies file for dj_util.
# This may be replaced when dependencies are built.
