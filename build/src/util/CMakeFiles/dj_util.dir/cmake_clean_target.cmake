file(REMOVE_RECURSE
  "libdj_util.a"
)
