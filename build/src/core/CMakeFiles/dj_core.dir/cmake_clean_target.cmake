file(REMOVE_RECURSE
  "libdj_core.a"
)
