file(REMOVE_RECURSE
  "CMakeFiles/dj_core.dir/deepjoin.cc.o"
  "CMakeFiles/dj_core.dir/deepjoin.cc.o.d"
  "CMakeFiles/dj_core.dir/encoders.cc.o"
  "CMakeFiles/dj_core.dir/encoders.cc.o.d"
  "CMakeFiles/dj_core.dir/model_io.cc.o"
  "CMakeFiles/dj_core.dir/model_io.cc.o.d"
  "CMakeFiles/dj_core.dir/reranker.cc.o"
  "CMakeFiles/dj_core.dir/reranker.cc.o.d"
  "CMakeFiles/dj_core.dir/searcher.cc.o"
  "CMakeFiles/dj_core.dir/searcher.cc.o.d"
  "CMakeFiles/dj_core.dir/trainer.cc.o"
  "CMakeFiles/dj_core.dir/trainer.cc.o.d"
  "CMakeFiles/dj_core.dir/training_data.cc.o"
  "CMakeFiles/dj_core.dir/training_data.cc.o.d"
  "CMakeFiles/dj_core.dir/transform.cc.o"
  "CMakeFiles/dj_core.dir/transform.cc.o.d"
  "libdj_core.a"
  "libdj_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dj_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
