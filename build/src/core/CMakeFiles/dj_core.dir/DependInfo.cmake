
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/deepjoin.cc" "src/core/CMakeFiles/dj_core.dir/deepjoin.cc.o" "gcc" "src/core/CMakeFiles/dj_core.dir/deepjoin.cc.o.d"
  "/root/repo/src/core/encoders.cc" "src/core/CMakeFiles/dj_core.dir/encoders.cc.o" "gcc" "src/core/CMakeFiles/dj_core.dir/encoders.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/core/CMakeFiles/dj_core.dir/model_io.cc.o" "gcc" "src/core/CMakeFiles/dj_core.dir/model_io.cc.o.d"
  "/root/repo/src/core/reranker.cc" "src/core/CMakeFiles/dj_core.dir/reranker.cc.o" "gcc" "src/core/CMakeFiles/dj_core.dir/reranker.cc.o.d"
  "/root/repo/src/core/searcher.cc" "src/core/CMakeFiles/dj_core.dir/searcher.cc.o" "gcc" "src/core/CMakeFiles/dj_core.dir/searcher.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/dj_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/dj_core.dir/trainer.cc.o.d"
  "/root/repo/src/core/training_data.cc" "src/core/CMakeFiles/dj_core.dir/training_data.cc.o" "gcc" "src/core/CMakeFiles/dj_core.dir/training_data.cc.o.d"
  "/root/repo/src/core/transform.cc" "src/core/CMakeFiles/dj_core.dir/transform.cc.o" "gcc" "src/core/CMakeFiles/dj_core.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dj_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dj_text.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dj_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ann/CMakeFiles/dj_ann.dir/DependInfo.cmake"
  "/root/repo/build/src/lake/CMakeFiles/dj_lake.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/dj_join.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
