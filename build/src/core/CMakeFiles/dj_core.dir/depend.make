# Empty dependencies file for dj_core.
# This may be replaced when dependencies are built.
