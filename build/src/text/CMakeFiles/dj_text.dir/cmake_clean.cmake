file(REMOVE_RECURSE
  "CMakeFiles/dj_text.dir/fasttext.cc.o"
  "CMakeFiles/dj_text.dir/fasttext.cc.o.d"
  "CMakeFiles/dj_text.dir/tokenizer.cc.o"
  "CMakeFiles/dj_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/dj_text.dir/vocab.cc.o"
  "CMakeFiles/dj_text.dir/vocab.cc.o.d"
  "libdj_text.a"
  "libdj_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dj_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
