
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/join/joinability.cc" "src/join/CMakeFiles/dj_join.dir/joinability.cc.o" "gcc" "src/join/CMakeFiles/dj_join.dir/joinability.cc.o.d"
  "/root/repo/src/join/josie.cc" "src/join/CMakeFiles/dj_join.dir/josie.cc.o" "gcc" "src/join/CMakeFiles/dj_join.dir/josie.cc.o.d"
  "/root/repo/src/join/lsh_ensemble.cc" "src/join/CMakeFiles/dj_join.dir/lsh_ensemble.cc.o" "gcc" "src/join/CMakeFiles/dj_join.dir/lsh_ensemble.cc.o.d"
  "/root/repo/src/join/pexeso.cc" "src/join/CMakeFiles/dj_join.dir/pexeso.cc.o" "gcc" "src/join/CMakeFiles/dj_join.dir/pexeso.cc.o.d"
  "/root/repo/src/join/setjoin.cc" "src/join/CMakeFiles/dj_join.dir/setjoin.cc.o" "gcc" "src/join/CMakeFiles/dj_join.dir/setjoin.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dj_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dj_text.dir/DependInfo.cmake"
  "/root/repo/build/src/lake/CMakeFiles/dj_lake.dir/DependInfo.cmake"
  "/root/repo/build/src/ann/CMakeFiles/dj_ann.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
