# Empty dependencies file for dj_join.
# This may be replaced when dependencies are built.
