file(REMOVE_RECURSE
  "CMakeFiles/dj_join.dir/joinability.cc.o"
  "CMakeFiles/dj_join.dir/joinability.cc.o.d"
  "CMakeFiles/dj_join.dir/josie.cc.o"
  "CMakeFiles/dj_join.dir/josie.cc.o.d"
  "CMakeFiles/dj_join.dir/lsh_ensemble.cc.o"
  "CMakeFiles/dj_join.dir/lsh_ensemble.cc.o.d"
  "CMakeFiles/dj_join.dir/pexeso.cc.o"
  "CMakeFiles/dj_join.dir/pexeso.cc.o.d"
  "CMakeFiles/dj_join.dir/setjoin.cc.o"
  "CMakeFiles/dj_join.dir/setjoin.cc.o.d"
  "libdj_join.a"
  "libdj_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dj_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
