file(REMOVE_RECURSE
  "libdj_join.a"
)
