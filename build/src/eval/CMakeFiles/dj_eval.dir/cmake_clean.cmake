file(REMOVE_RECURSE
  "CMakeFiles/dj_eval.dir/metrics.cc.o"
  "CMakeFiles/dj_eval.dir/metrics.cc.o.d"
  "libdj_eval.a"
  "libdj_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dj_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
