file(REMOVE_RECURSE
  "libdj_eval.a"
)
