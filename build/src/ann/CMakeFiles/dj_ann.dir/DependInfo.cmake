
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ann/hnsw.cc" "src/ann/CMakeFiles/dj_ann.dir/hnsw.cc.o" "gcc" "src/ann/CMakeFiles/dj_ann.dir/hnsw.cc.o.d"
  "/root/repo/src/ann/ivfpq.cc" "src/ann/CMakeFiles/dj_ann.dir/ivfpq.cc.o" "gcc" "src/ann/CMakeFiles/dj_ann.dir/ivfpq.cc.o.d"
  "/root/repo/src/ann/kmeans.cc" "src/ann/CMakeFiles/dj_ann.dir/kmeans.cc.o" "gcc" "src/ann/CMakeFiles/dj_ann.dir/kmeans.cc.o.d"
  "/root/repo/src/ann/vector_index.cc" "src/ann/CMakeFiles/dj_ann.dir/vector_index.cc.o" "gcc" "src/ann/CMakeFiles/dj_ann.dir/vector_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dj_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dj_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
