# Empty compiler generated dependencies file for dj_ann.
# This may be replaced when dependencies are built.
