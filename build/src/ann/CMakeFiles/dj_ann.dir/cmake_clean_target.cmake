file(REMOVE_RECURSE
  "libdj_ann.a"
)
