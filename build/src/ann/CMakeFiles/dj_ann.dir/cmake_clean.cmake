file(REMOVE_RECURSE
  "CMakeFiles/dj_ann.dir/hnsw.cc.o"
  "CMakeFiles/dj_ann.dir/hnsw.cc.o.d"
  "CMakeFiles/dj_ann.dir/ivfpq.cc.o"
  "CMakeFiles/dj_ann.dir/ivfpq.cc.o.d"
  "CMakeFiles/dj_ann.dir/kmeans.cc.o"
  "CMakeFiles/dj_ann.dir/kmeans.cc.o.d"
  "CMakeFiles/dj_ann.dir/vector_index.cc.o"
  "CMakeFiles/dj_ann.dir/vector_index.cc.o.d"
  "libdj_ann.a"
  "libdj_ann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dj_ann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
