
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/autograd.cc" "src/nn/CMakeFiles/dj_nn.dir/autograd.cc.o" "gcc" "src/nn/CMakeFiles/dj_nn.dir/autograd.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/dj_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/dj_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/matrix.cc" "src/nn/CMakeFiles/dj_nn.dir/matrix.cc.o" "gcc" "src/nn/CMakeFiles/dj_nn.dir/matrix.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/nn/CMakeFiles/dj_nn.dir/mlp.cc.o" "gcc" "src/nn/CMakeFiles/dj_nn.dir/mlp.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/dj_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/dj_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/transformer.cc" "src/nn/CMakeFiles/dj_nn.dir/transformer.cc.o" "gcc" "src/nn/CMakeFiles/dj_nn.dir/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dj_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
