file(REMOVE_RECURSE
  "libdj_nn.a"
)
