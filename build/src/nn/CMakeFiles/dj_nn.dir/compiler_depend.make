# Empty compiler generated dependencies file for dj_nn.
# This may be replaced when dependencies are built.
