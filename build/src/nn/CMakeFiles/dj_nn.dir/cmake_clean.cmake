file(REMOVE_RECURSE
  "CMakeFiles/dj_nn.dir/autograd.cc.o"
  "CMakeFiles/dj_nn.dir/autograd.cc.o.d"
  "CMakeFiles/dj_nn.dir/loss.cc.o"
  "CMakeFiles/dj_nn.dir/loss.cc.o.d"
  "CMakeFiles/dj_nn.dir/matrix.cc.o"
  "CMakeFiles/dj_nn.dir/matrix.cc.o.d"
  "CMakeFiles/dj_nn.dir/mlp.cc.o"
  "CMakeFiles/dj_nn.dir/mlp.cc.o.d"
  "CMakeFiles/dj_nn.dir/optimizer.cc.o"
  "CMakeFiles/dj_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/dj_nn.dir/transformer.cc.o"
  "CMakeFiles/dj_nn.dir/transformer.cc.o.d"
  "libdj_nn.a"
  "libdj_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dj_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
