# Empty dependencies file for dj_lake.
# This may be replaced when dependencies are built.
