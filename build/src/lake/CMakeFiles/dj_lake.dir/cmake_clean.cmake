file(REMOVE_RECURSE
  "CMakeFiles/dj_lake.dir/csv_loader.cc.o"
  "CMakeFiles/dj_lake.dir/csv_loader.cc.o.d"
  "CMakeFiles/dj_lake.dir/domain.cc.o"
  "CMakeFiles/dj_lake.dir/domain.cc.o.d"
  "CMakeFiles/dj_lake.dir/generator.cc.o"
  "CMakeFiles/dj_lake.dir/generator.cc.o.d"
  "CMakeFiles/dj_lake.dir/table.cc.o"
  "CMakeFiles/dj_lake.dir/table.cc.o.d"
  "libdj_lake.a"
  "libdj_lake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dj_lake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
