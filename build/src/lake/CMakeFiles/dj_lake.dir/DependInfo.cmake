
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lake/csv_loader.cc" "src/lake/CMakeFiles/dj_lake.dir/csv_loader.cc.o" "gcc" "src/lake/CMakeFiles/dj_lake.dir/csv_loader.cc.o.d"
  "/root/repo/src/lake/domain.cc" "src/lake/CMakeFiles/dj_lake.dir/domain.cc.o" "gcc" "src/lake/CMakeFiles/dj_lake.dir/domain.cc.o.d"
  "/root/repo/src/lake/generator.cc" "src/lake/CMakeFiles/dj_lake.dir/generator.cc.o" "gcc" "src/lake/CMakeFiles/dj_lake.dir/generator.cc.o.d"
  "/root/repo/src/lake/table.cc" "src/lake/CMakeFiles/dj_lake.dir/table.cc.o" "gcc" "src/lake/CMakeFiles/dj_lake.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dj_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
