file(REMOVE_RECURSE
  "libdj_lake.a"
)
