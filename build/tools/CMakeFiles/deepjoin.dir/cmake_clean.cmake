file(REMOVE_RECURSE
  "CMakeFiles/deepjoin.dir/deepjoin_cli.cc.o"
  "CMakeFiles/deepjoin.dir/deepjoin_cli.cc.o.d"
  "deepjoin"
  "deepjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
