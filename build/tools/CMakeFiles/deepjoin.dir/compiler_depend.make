# Empty compiler generated dependencies file for deepjoin.
# This may be replaced when dependencies are built.
