# Empty compiler generated dependencies file for bench_table14_vary_k.
# This may be replaced when dependencies are built.
