# Empty dependencies file for bench_table15_column_size_time.
# This may be replaced when dependencies are built.
