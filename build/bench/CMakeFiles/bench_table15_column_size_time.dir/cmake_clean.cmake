file(REMOVE_RECURSE
  "CMakeFiles/bench_table15_column_size_time.dir/bench_table15_column_size_time.cc.o"
  "CMakeFiles/bench_table15_column_size_time.dir/bench_table15_column_size_time.cc.o.d"
  "bench_table15_column_size_time"
  "bench_table15_column_size_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table15_column_size_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
