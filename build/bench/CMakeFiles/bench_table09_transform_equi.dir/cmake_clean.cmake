file(REMOVE_RECURSE
  "CMakeFiles/bench_table09_transform_equi.dir/bench_table09_transform_equi.cc.o"
  "CMakeFiles/bench_table09_transform_equi.dir/bench_table09_transform_equi.cc.o.d"
  "bench_table09_transform_equi"
  "bench_table09_transform_equi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table09_transform_equi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
