# Empty compiler generated dependencies file for bench_table09_transform_equi.
# This may be replaced when dependencies are built.
