file(REMOVE_RECURSE
  "CMakeFiles/bench_table05_semantic_tau08.dir/bench_table05_semantic_tau08.cc.o"
  "CMakeFiles/bench_table05_semantic_tau08.dir/bench_table05_semantic_tau08.cc.o.d"
  "bench_table05_semantic_tau08"
  "bench_table05_semantic_tau08.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table05_semantic_tau08.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
