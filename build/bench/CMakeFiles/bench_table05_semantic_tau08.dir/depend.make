# Empty dependencies file for bench_table05_semantic_tau08.
# This may be replaced when dependencies are built.
