# Empty dependencies file for bench_table06_semantic_tau07.
# This may be replaced when dependencies are built.
