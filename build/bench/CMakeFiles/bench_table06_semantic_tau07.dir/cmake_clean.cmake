file(REMOVE_RECURSE
  "CMakeFiles/bench_table06_semantic_tau07.dir/bench_table06_semantic_tau07.cc.o"
  "CMakeFiles/bench_table06_semantic_tau07.dir/bench_table06_semantic_tau07.cc.o.d"
  "bench_table06_semantic_tau07"
  "bench_table06_semantic_tau07.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table06_semantic_tau07.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
