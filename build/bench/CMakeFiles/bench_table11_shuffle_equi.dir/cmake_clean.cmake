file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_shuffle_equi.dir/bench_table11_shuffle_equi.cc.o"
  "CMakeFiles/bench_table11_shuffle_equi.dir/bench_table11_shuffle_equi.cc.o.d"
  "bench_table11_shuffle_equi"
  "bench_table11_shuffle_equi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_shuffle_equi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
