# Empty dependencies file for bench_table11_shuffle_equi.
# This may be replaced when dependencies are built.
