# Empty dependencies file for bench_table10_transform_semantic.
# This may be replaced when dependencies are built.
