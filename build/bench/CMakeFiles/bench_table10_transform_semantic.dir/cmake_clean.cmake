file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_transform_semantic.dir/bench_table10_transform_semantic.cc.o"
  "CMakeFiles/bench_table10_transform_semantic.dir/bench_table10_transform_semantic.cc.o.d"
  "bench_table10_transform_semantic"
  "bench_table10_transform_semantic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_transform_semantic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
