file(REMOVE_RECURSE
  "libdj_benchlib.a"
)
