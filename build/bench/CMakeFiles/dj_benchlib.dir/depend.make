# Empty dependencies file for dj_benchlib.
# This may be replaced when dependencies are built.
