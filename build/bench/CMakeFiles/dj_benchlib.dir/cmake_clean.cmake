file(REMOVE_RECURSE
  "CMakeFiles/dj_benchlib.dir/common.cc.o"
  "CMakeFiles/dj_benchlib.dir/common.cc.o.d"
  "CMakeFiles/dj_benchlib.dir/semantic_accuracy.cc.o"
  "CMakeFiles/dj_benchlib.dir/semantic_accuracy.cc.o.d"
  "libdj_benchlib.a"
  "libdj_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dj_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
