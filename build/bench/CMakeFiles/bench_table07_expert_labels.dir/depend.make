# Empty dependencies file for bench_table07_expert_labels.
# This may be replaced when dependencies are built.
