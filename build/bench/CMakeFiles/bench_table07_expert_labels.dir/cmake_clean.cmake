file(REMOVE_RECURSE
  "CMakeFiles/bench_table07_expert_labels.dir/bench_table07_expert_labels.cc.o"
  "CMakeFiles/bench_table07_expert_labels.dir/bench_table07_expert_labels.cc.o.d"
  "bench_table07_expert_labels"
  "bench_table07_expert_labels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table07_expert_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
