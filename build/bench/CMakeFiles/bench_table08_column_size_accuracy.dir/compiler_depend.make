# Empty compiler generated dependencies file for bench_table08_column_size_accuracy.
# This may be replaced when dependencies are built.
