# Empty compiler generated dependencies file for bench_table12_shuffle_semantic.
# This may be replaced when dependencies are built.
