file(REMOVE_RECURSE
  "CMakeFiles/bench_table04_semantic_accuracy.dir/bench_table04_semantic_accuracy.cc.o"
  "CMakeFiles/bench_table04_semantic_accuracy.dir/bench_table04_semantic_accuracy.cc.o.d"
  "bench_table04_semantic_accuracy"
  "bench_table04_semantic_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table04_semantic_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
