# Empty compiler generated dependencies file for bench_table04_semantic_accuracy.
# This may be replaced when dependencies are built.
