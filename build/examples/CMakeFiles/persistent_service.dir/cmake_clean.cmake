file(REMOVE_RECURSE
  "CMakeFiles/persistent_service.dir/persistent_service.cpp.o"
  "CMakeFiles/persistent_service.dir/persistent_service.cpp.o.d"
  "persistent_service"
  "persistent_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
