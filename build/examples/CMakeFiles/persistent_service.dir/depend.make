# Empty dependencies file for persistent_service.
# This may be replaced when dependencies are built.
