file(REMOVE_RECURSE
  "CMakeFiles/data_enrichment.dir/data_enrichment.cpp.o"
  "CMakeFiles/data_enrichment.dir/data_enrichment.cpp.o.d"
  "data_enrichment"
  "data_enrichment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_enrichment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
