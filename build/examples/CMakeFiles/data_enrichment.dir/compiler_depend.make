# Empty compiler generated dependencies file for data_enrichment.
# This may be replaced when dependencies are built.
