file(REMOVE_RECURSE
  "CMakeFiles/lake_indexing.dir/lake_indexing.cpp.o"
  "CMakeFiles/lake_indexing.dir/lake_indexing.cpp.o.d"
  "lake_indexing"
  "lake_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lake_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
