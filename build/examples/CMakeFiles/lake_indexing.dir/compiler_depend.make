# Empty compiler generated dependencies file for lake_indexing.
# This may be replaced when dependencies are built.
