# Empty dependencies file for semantic_discovery.
# This may be replaced when dependencies are built.
