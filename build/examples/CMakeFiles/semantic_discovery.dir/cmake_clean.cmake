file(REMOVE_RECURSE
  "CMakeFiles/semantic_discovery.dir/semantic_discovery.cpp.o"
  "CMakeFiles/semantic_discovery.dir/semantic_discovery.cpp.o.d"
  "semantic_discovery"
  "semantic_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
