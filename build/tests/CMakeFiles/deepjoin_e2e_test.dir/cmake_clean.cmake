file(REMOVE_RECURSE
  "CMakeFiles/deepjoin_e2e_test.dir/core/deepjoin_e2e_test.cc.o"
  "CMakeFiles/deepjoin_e2e_test.dir/core/deepjoin_e2e_test.cc.o.d"
  "deepjoin_e2e_test"
  "deepjoin_e2e_test.pdb"
  "deepjoin_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepjoin_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
