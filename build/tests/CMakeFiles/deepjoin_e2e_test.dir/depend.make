# Empty dependencies file for deepjoin_e2e_test.
# This may be replaced when dependencies are built.
