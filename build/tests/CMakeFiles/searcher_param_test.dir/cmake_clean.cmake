file(REMOVE_RECURSE
  "CMakeFiles/searcher_param_test.dir/core/searcher_param_test.cc.o"
  "CMakeFiles/searcher_param_test.dir/core/searcher_param_test.cc.o.d"
  "searcher_param_test"
  "searcher_param_test.pdb"
  "searcher_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/searcher_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
