# Empty compiler generated dependencies file for searcher_param_test.
# This may be replaced when dependencies are built.
