# Empty dependencies file for index_lifecycle_test.
# This may be replaced when dependencies are built.
