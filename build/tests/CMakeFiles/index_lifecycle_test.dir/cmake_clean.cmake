file(REMOVE_RECURSE
  "CMakeFiles/index_lifecycle_test.dir/core/index_lifecycle_test.cc.o"
  "CMakeFiles/index_lifecycle_test.dir/core/index_lifecycle_test.cc.o.d"
  "index_lifecycle_test"
  "index_lifecycle_test.pdb"
  "index_lifecycle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_lifecycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
