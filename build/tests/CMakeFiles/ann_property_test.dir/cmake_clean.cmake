file(REMOVE_RECURSE
  "CMakeFiles/ann_property_test.dir/ann/ann_property_test.cc.o"
  "CMakeFiles/ann_property_test.dir/ann/ann_property_test.cc.o.d"
  "ann_property_test"
  "ann_property_test.pdb"
  "ann_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ann_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
