file(REMOVE_RECURSE
  "CMakeFiles/minhash_test.dir/join/minhash_test.cc.o"
  "CMakeFiles/minhash_test.dir/join/minhash_test.cc.o.d"
  "minhash_test"
  "minhash_test.pdb"
  "minhash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minhash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
