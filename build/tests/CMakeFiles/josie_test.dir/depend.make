# Empty dependencies file for josie_test.
# This may be replaced when dependencies are built.
