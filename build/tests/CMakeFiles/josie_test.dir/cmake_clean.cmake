file(REMOVE_RECURSE
  "CMakeFiles/josie_test.dir/join/josie_test.cc.o"
  "CMakeFiles/josie_test.dir/join/josie_test.cc.o.d"
  "josie_test"
  "josie_test.pdb"
  "josie_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/josie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
