file(REMOVE_RECURSE
  "CMakeFiles/ivfpq_test.dir/ann/ivfpq_test.cc.o"
  "CMakeFiles/ivfpq_test.dir/ann/ivfpq_test.cc.o.d"
  "ivfpq_test"
  "ivfpq_test.pdb"
  "ivfpq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivfpq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
