# Empty dependencies file for ivfpq_test.
# This may be replaced when dependencies are built.
