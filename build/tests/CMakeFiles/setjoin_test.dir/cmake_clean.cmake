file(REMOVE_RECURSE
  "CMakeFiles/setjoin_test.dir/join/setjoin_test.cc.o"
  "CMakeFiles/setjoin_test.dir/join/setjoin_test.cc.o.d"
  "setjoin_test"
  "setjoin_test.pdb"
  "setjoin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setjoin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
