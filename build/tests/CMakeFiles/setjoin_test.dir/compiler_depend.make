# Empty compiler generated dependencies file for setjoin_test.
# This may be replaced when dependencies are built.
