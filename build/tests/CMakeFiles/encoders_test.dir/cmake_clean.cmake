file(REMOVE_RECURSE
  "CMakeFiles/encoders_test.dir/core/encoders_test.cc.o"
  "CMakeFiles/encoders_test.dir/core/encoders_test.cc.o.d"
  "encoders_test"
  "encoders_test.pdb"
  "encoders_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoders_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
