
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/binary_io_test.cc" "tests/CMakeFiles/binary_io_test.dir/util/binary_io_test.cc.o" "gcc" "tests/CMakeFiles/binary_io_test.dir/util/binary_io_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dj_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/dj_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/dj_join.dir/DependInfo.cmake"
  "/root/repo/build/src/lake/CMakeFiles/dj_lake.dir/DependInfo.cmake"
  "/root/repo/build/src/ann/CMakeFiles/dj_ann.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dj_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dj_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dj_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
