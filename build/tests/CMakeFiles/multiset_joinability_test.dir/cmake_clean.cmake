file(REMOVE_RECURSE
  "CMakeFiles/multiset_joinability_test.dir/join/multiset_joinability_test.cc.o"
  "CMakeFiles/multiset_joinability_test.dir/join/multiset_joinability_test.cc.o.d"
  "multiset_joinability_test"
  "multiset_joinability_test.pdb"
  "multiset_joinability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiset_joinability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
