# Empty compiler generated dependencies file for multiset_joinability_test.
# This may be replaced when dependencies are built.
