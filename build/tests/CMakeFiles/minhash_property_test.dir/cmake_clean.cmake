file(REMOVE_RECURSE
  "CMakeFiles/minhash_property_test.dir/join/minhash_property_test.cc.o"
  "CMakeFiles/minhash_property_test.dir/join/minhash_property_test.cc.o.d"
  "minhash_property_test"
  "minhash_property_test.pdb"
  "minhash_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minhash_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
