# Empty dependencies file for minhash_property_test.
# This may be replaced when dependencies are built.
