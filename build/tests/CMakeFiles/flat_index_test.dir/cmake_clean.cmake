file(REMOVE_RECURSE
  "CMakeFiles/flat_index_test.dir/ann/flat_index_test.cc.o"
  "CMakeFiles/flat_index_test.dir/ann/flat_index_test.cc.o.d"
  "flat_index_test"
  "flat_index_test.pdb"
  "flat_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
