file(REMOVE_RECURSE
  "CMakeFiles/joinability_test.dir/join/joinability_test.cc.o"
  "CMakeFiles/joinability_test.dir/join/joinability_test.cc.o.d"
  "joinability_test"
  "joinability_test.pdb"
  "joinability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joinability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
