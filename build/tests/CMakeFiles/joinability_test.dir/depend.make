# Empty dependencies file for joinability_test.
# This may be replaced when dependencies are built.
