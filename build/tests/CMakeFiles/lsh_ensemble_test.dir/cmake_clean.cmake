file(REMOVE_RECURSE
  "CMakeFiles/lsh_ensemble_test.dir/join/lsh_ensemble_test.cc.o"
  "CMakeFiles/lsh_ensemble_test.dir/join/lsh_ensemble_test.cc.o.d"
  "lsh_ensemble_test"
  "lsh_ensemble_test.pdb"
  "lsh_ensemble_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsh_ensemble_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
