# Empty dependencies file for lsh_ensemble_test.
# This may be replaced when dependencies are built.
