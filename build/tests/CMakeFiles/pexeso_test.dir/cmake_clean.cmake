file(REMOVE_RECURSE
  "CMakeFiles/pexeso_test.dir/join/pexeso_test.cc.o"
  "CMakeFiles/pexeso_test.dir/join/pexeso_test.cc.o.d"
  "pexeso_test"
  "pexeso_test.pdb"
  "pexeso_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pexeso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
