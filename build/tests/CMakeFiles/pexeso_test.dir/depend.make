# Empty dependencies file for pexeso_test.
# This may be replaced when dependencies are built.
