# Empty dependencies file for joinability_property_test.
# This may be replaced when dependencies are built.
