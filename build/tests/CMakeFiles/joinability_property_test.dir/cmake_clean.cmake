file(REMOVE_RECURSE
  "CMakeFiles/joinability_property_test.dir/join/joinability_property_test.cc.o"
  "CMakeFiles/joinability_property_test.dir/join/joinability_property_test.cc.o.d"
  "joinability_property_test"
  "joinability_property_test.pdb"
  "joinability_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joinability_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
