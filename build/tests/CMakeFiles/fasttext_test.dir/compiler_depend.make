# Empty compiler generated dependencies file for fasttext_test.
# This may be replaced when dependencies are built.
