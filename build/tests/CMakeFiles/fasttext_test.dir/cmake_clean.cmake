file(REMOVE_RECURSE
  "CMakeFiles/fasttext_test.dir/text/fasttext_test.cc.o"
  "CMakeFiles/fasttext_test.dir/text/fasttext_test.cc.o.d"
  "fasttext_test"
  "fasttext_test.pdb"
  "fasttext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasttext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
