# Empty dependencies file for csv_pipeline_test.
# This may be replaced when dependencies are built.
