file(REMOVE_RECURSE
  "CMakeFiles/training_data_test.dir/core/training_data_test.cc.o"
  "CMakeFiles/training_data_test.dir/core/training_data_test.cc.o.d"
  "training_data_test"
  "training_data_test.pdb"
  "training_data_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
