# Empty dependencies file for training_data_test.
# This may be replaced when dependencies are built.
